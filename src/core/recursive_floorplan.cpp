#include "core/recursive_floorplan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <iterator>
#include <utility>

#include "core/decluster.hpp"
#include "core/layout_optimizer.hpp"
#include "core/target_area.hpp"
#include "floorplan/annealer.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace hidap {

namespace {
constexpr int kMaxRecursionDepth = 64;
}

RecursiveFloorplanner::RecursiveFloorplanner(const Design& design,
                                             const CellAdjacency& adjacency,
                                             const HierTree& ht, const SeqGraph& seq,
                                             const HiDaPOptions& options)
    : design_(design), adjacency_(adjacency), ht_(ht), seq_(seq), options_(options),
      store_(design.cell_count(), ht.size()) {
  shape_curves_.resize(ht.size());
  plan_.resize(ht.size());
}

RecursiveFloorplanner::~RecursiveFloorplanner() {
  if (!curves_task_.valid()) return;
  if (curves_claimed_ != nullptr && !curves_claimed_->exchange(true)) {
    // Still queued: claiming turns the task into a no-op that never
    // dereferences *this, so it may outlive us.
    return;
  }
  // A worker claimed it: it is actively generating into our members;
  // finite wait (the shards never block on other futures).
  curves_task_.wait();
}

void RecursiveFloorplanner::adopt_shape_curves(const std::vector<ShapeCurve>& curves) {
  assert(curves.size() == ht_.size() && "curve set from a different hierarchy");
  shape_curves_ = curves;
  curves_ready_ = true;
}

void RecursiveFloorplanner::adopt_recursion_plan(const RecursionPlan& plan) {
  assert(plan.size() == ht_.size() && "plan from a different hierarchy");
  plan_ = plan;
  plan_adopted_ = true;
}

void RecursiveFloorplanner::ensure_shape_curves() {
  if (curves_task_.valid()) {
    if (curves_claimed_ != nullptr && !curves_claimed_->exchange(true)) {
      // The task is still queued (no worker was free): claim it and run
      // the generation right here. Blocking on a queued task instead
      // would deadlock a saturated pool -- with every lane inside its
      // own placement, all lanes are joiners and none is left to drain
      // the queue. The abandoned task no-ops without touching *this.
      curves_task_ = {};
      generate_shape_curves();
    } else {
      // A worker is generating; get() (not wait()) so an exception from
      // the shards surfaces here, on the thread that needs the curves.
      std::future<void> task = std::move(curves_task_);
      task.get();
    }
  }
  if (!curves_ready_) generate_shape_curves();
}

void RecursiveFloorplanner::generate_shape_curves() {
  Timer curves_timer;
  obs::Span span("shape_curves", "scheduler");
  // A node's curve depends only on its children's, which sit strictly
  // deeper, so the bottom-up sweep is sharded by tree depth: every rank
  // runs as one parallel_for over its nodes. Each node derives its SA
  // seed from its own index and writes only its own curve slot, so the
  // curves are bit-identical at any thread count (including the old
  // descending-id sequential sweep).
  int max_depth = 0;
  for (std::size_t i = 0; i < ht_.size(); ++i) {
    if (ht_.node(static_cast<HtNodeId>(i)).subtree_macros > 0) {
      max_depth = std::max(max_depth, ht_.depth(static_cast<HtNodeId>(i)));
    }
  }
  std::vector<std::vector<HtNodeId>> ranks(static_cast<std::size_t>(max_depth) + 1);
  for (std::size_t i = 0; i < ht_.size(); ++i) {
    const HtNodeId id = static_cast<HtNodeId>(i);
    if (ht_.node(id).subtree_macros == 0) continue;
    ranks[static_cast<std::size_t>(ht_.depth(id))].push_back(id);
  }
  const int lanes = effective_thread_count(options_.num_threads);
  for (std::size_t d = ranks.size(); d-- > 0;) {
    const std::vector<HtNodeId>& rank = ranks[d];
    parallel_for(
        rank.size(),
        [&](std::size_t r) {
          const std::size_t i = static_cast<std::size_t>(rank[r]);
          const HtNodeId id = rank[r];
          const HtNode& node = ht_.node(id);
          if (node.is_macro_leaf()) {
            const MacroDef& def = design_.macro_def_of(node.macro_cell);
            // The halo inflates the footprint the floorplanner must reserve.
            const double halo2 = 2.0 * options_.macro_halo;
            shape_curves_[i] =
                ShapeCurve::for_rect(def.w + halo2, def.h + halo2, /*rotate=*/true);
            return;
          }
          std::vector<ShapeCurve> child_curves;
          for (const HtNodeId c : node.children) {
            if (ht_.macro_count(c) > 0) {
              child_curves.push_back(shape_curves_[static_cast<std::size_t>(c)]);
            }
          }
          if (child_curves.empty()) return;  // defensive; cannot happen
          if (child_curves.size() == 1) {
            shape_curves_[i] = std::move(child_curves.front());
            return;
          }
          AreaFloorplanOptions fp = options_.shape_fp;
          fp.anneal.seed = options_.job.seed * 0x9e3779b9ULL + i;
          // A stopped job winds down fast: each node's packing anneal
          // exits at its first cooperative check and the merged
          // best-so-far curve (the initial slicing at worst) keeps the
          // curve set structurally valid for the fallback recursion.
          fp.anneal.control = options_.job.control;
          shape_curves_[i] = pack_shape_curve(child_curves, fp);
        },
        lanes);
  }
  curves_ready_ = true;
  curves_seconds_ = curves_timer.seconds();
}

PlacementResult RecursiveFloorplanner::run(const Rect& die) {
  if (!curves_ready_ && !curves_task_.valid()) {
    if (options_.overlap_curves && effective_thread_count(options_.num_threads) > 1) {
      // Overlap the curve shards with the recursion front: everything up
      // to the level-0 anneal (planning, target areas, dataflow
      // inference) reads no curve, so the dispatch hides the curve wall
      // behind it. ensure_shape_curves() joins at the first read; the
      // claim flag makes the join run the generation itself when no
      // worker picked the task up (see the member comment).
      curves_claimed_ = std::make_shared<std::atomic<bool>>(false);
      curves_task_ = ThreadPool::global().submit(
          [this, claimed = curves_claimed_] {
            if (!claimed->exchange(true)) generate_shape_curves();
          });
    } else {
      generate_shape_curves();
    }
  }
  die_ = die;
  result_ = PlacementResult{};
  store_.reset(options_.job.preplaced);
  for (const MacroPlacement& m : options_.job.preplaced) result_.macros.push_back(m);
  if (!plan_adopted_) plan_recursion();
  store_.set_region(ht_.root(), die);
  if (unfixed_macro_count(ht_.root()) > 0) {
    // The root's inherited snapshot holds exactly the preplaced macro
    // positions (the only estimates that exist before the first level).
    const EstimateSnapshot initial = store_.snapshot();
    SubtreeResult root;
    floorplan_level(ht_.root(), die, 0, initial, root);
    result_.macros.insert(result_.macros.end(),
                          std::make_move_iterator(root.macros.begin()),
                          std::make_move_iterator(root.macros.end()));
    result_.snapshots = std::move(root.snapshots);
  }
  // Fallback/empty paths above may return without ever reading a curve;
  // join here so the artifact export (and our members) never race an
  // in-flight dispatch.
  ensure_shape_curves();
  return std::move(result_);
}

int RecursiveFloorplanner::unfixed_macro_count(HtNodeId node) const {
  if (store_.preplaced_count() == 0) return ht_.macro_count(node);
  int count = 0;
  for (const CellId m : ht_.macros_under(node)) count += !store_.is_preplaced(m);
  return count;
}

// The recursion structure is a pure function of the hierarchy tree, the
// declustering thresholds and the preplaced set -- never of the evolving
// estimates -- so the whole schedule is computable before any layout
// runs. Ordinals are assigned in DFS preorder, exactly the order the
// legacy sequential DFS incremented its level counter, so anneal seeds
// are unchanged and independent of execution order.
void RecursiveFloorplanner::plan_recursion() {
  for (LevelPlan& p : plan_) p = LevelPlan{};
  std::uint64_t counter = 0;
  if (unfixed_macro_count(ht_.root()) > 0) plan_level(ht_.root(), 0, counter);
}

void RecursiveFloorplanner::plan_level(HtNodeId nh, int depth, std::uint64_t& counter) {
  LevelPlan& plan = plan_[static_cast<std::size_t>(nh)];
  plan.planned = true;
  if (depth > kMaxRecursionDepth) {
    plan.fallback = true;
    return;
  }
  const double area_nh = ht_.area(nh);
  Declustering dec = hierarchical_declustering(
      ht_, nh, options_.open_area_frac * area_nh, options_.min_area_frac * area_nh);
  if (dec.hcb.empty()) {
    plan.fallback = true;
    return;
  }
  plan.ordinal = ++counter;
  plan.hcb = std::move(dec.hcb);
  for (const HtNodeId block : plan.hcb) {
    if (unfixed_macro_count(block) > 1) plan_level(block, depth + 1, counter);
  }
}

void RecursiveFloorplanner::update_estimates(HtNodeId block, const Point& center,
                                             EstimateSnapshot* mirror) {
  for (const CellId macro : ht_.macros_under(block)) {
    if (store_.is_preplaced(macro)) continue;  // engineer-placed: keep exact
    store_.set_estimate(macro, center);
    if (mirror) mirror->set(macro, center);
  }
}

void RecursiveFloorplanner::floorplan_level(HtNodeId nh, const Rect& region, int depth,
                                            const EstimateSnapshot& inherited,
                                            SubtreeResult& out) {
  store_.set_region(nh, region);
  obs::Span span("level", "scheduler");
  span.arg("ordinal",
           static_cast<std::int64_t>(plan_[static_cast<std::size_t>(nh)].ordinal));
  span.arg("depth", depth);
  JobControl* control = options_.job.control;
  if (control != nullptr && control->should_stop()) {
    // Cancelled / past deadline: the whole subtree degrades to the
    // cheap grid prototype inside its region -- every macro still gets
    // a position (a valid partial-quality result) and the remaining
    // work is O(macros), so the stop is prompt at any depth. Stops are
    // sticky, so sibling tasks observe the same predicate and wind
    // down too.
    fallback_grid_place(nh, region, out);
    return;
  }
  if (control != nullptr) {
    control->post_progress("level %s depth=%d region=%.0fx%.0f", ht_.path(nh).c_str(),
                           depth, region.w, region.h);
  }
  const LevelPlan& plan = plan_[static_cast<std::size_t>(nh)];
  assert(plan.planned && "floorplan_level on an unplanned node");
  if (plan.fallback) {
    if (depth > kMaxRecursionDepth) {
      HIDAP_LOG_WARN("recursion depth cap at %s; grid fallback", ht_.path(nh).c_str());
    } else {
      HIDAP_LOG_WARN("no blocks at level %s", ht_.path(nh).c_str());
    }
    fallback_grid_place(nh, region, out);
    return;
  }
  const std::vector<HtNodeId>& hcb = plan.hcb;

  // --- Algorithm 2, step 4: target area assignment.
  const TargetAreaResult areas = assign_target_areas(design_, adjacency_, ht_, nh, hcb);

  // --- step 5: dataflow inference. Snapshot semantics anchor every
  // outside-macro terminal to the parent's committed layout; the legacy
  // order reads the live store at this (sequential) DFS visit, which
  // includes the refinements of earlier siblings. The per-level
  // snapshot() copy that expresses "live" in snapshot vocabulary is
  // O(cells) but disappears next to the level's anneal (legacy-mode
  // suite walls match the pre-refactor runs; see BENCH_pr5.json).
  const bool legacy = options_.legacy_estimate_order;
  const EstimateSnapshot live = legacy ? store_.snapshot() : EstimateSnapshot{};
  const EstimateSnapshot& estimates = legacy ? live : inherited;
  const LevelDataflow flow =
      infer_level_dataflow(design_, ht_, seq_, nh, hcb, estimates, options_);

  // --- step 6: layout generation. First curve read of the recursion:
  // join the overlapped curve dispatch (a no-op below level 0).
  ensure_shape_curves();
  LayoutProblem problem;
  problem.region = region;
  problem.terminals = flow.terminal_positions;
  problem.affinity = &flow.affinity;
  problem.num_threads = options_.num_threads;
  problem.blocks.reserve(hcb.size());
  for (std::size_t b = 0; b < hcb.size(); ++b) {
    BudgetBlock block;
    if (ht_.macro_count(hcb[b]) > 0) {
      block.gamma = shape_curves_[static_cast<std::size_t>(hcb[b])];
    }
    block.am = areas.minimum_area[b];
    block.at = areas.target_area[b];
    problem.blocks.push_back(std::move(block));
  }
  AnnealOptions anneal = options_.layout_anneal;
  anneal.seed = options_.job.seed * 0xd1342543de82ef95ULL + plan.ordinal;
  anneal.control = control;
  if (options_.anneal_autoscale) {
    // Opt-in effort scaling by this level's block count (see
    // HiDaPOptions::anneal_autoscale; outside the bit-identity contract).
    anneal.moves_per_temperature =
        autoscaled_moves(anneal.moves_per_temperature, hcb.size());
  }
  const LayoutSolution layout = optimize_layout(problem, anneal);

  // Snapshot for Fig. 1-style visualization.
  LevelSnapshot snap;
  snap.level = nh;
  snap.region = region;
  snap.blocks = hcb;
  snap.block_rects = layout.rects;
  snap.depth = depth;
  for (const HtNodeId b : hcb) snap.block_macro_counts.push_back(ht_.macro_count(b));
  out.snapshots.push_back(std::move(snap));

  // First pass: commit this level's prototype centers so deeper levels
  // (and, in legacy order, later siblings) see each block's position.
  // The child snapshot is the inherited view plus exactly these writes,
  // shared read-only by every child task -- and only materialized when
  // some block actually recurses (leaf-most levels skip the copy).
  const std::size_t nb = hcb.size();
  std::vector<int> unfixed(nb);
  bool any_recurse = false;
  for (std::size_t b = 0; b < nb; ++b) {
    unfixed[b] = unfixed_macro_count(hcb[b]);
    any_recurse = any_recurse || unfixed[b] > 1;
  }
  EstimateSnapshot child_snap;
  if (!legacy && any_recurse) child_snap = inherited;
  EstimateSnapshot* mirror = (legacy || !any_recurse) ? nullptr : &child_snap;
  for (std::size_t b = 0; b < nb; ++b) {
    store_.set_region(hcb[b], layout.rects[b]);
    if (unfixed[b] > 0) {
      update_estimates(hcb[b], layout.rects[b].center(), mirror);
    }
  }

  // --- steps 7-11: recurse / fix, one slot per block. Every block's
  // work touches only its own subtree's store slots and its own
  // fragment, so the scheduler may run the slots in any order.
  std::vector<SubtreeResult> child(nb);
  const auto process_block = [&](std::size_t b) {
    const HtNodeId block = hcb[b];
    const int macros = unfixed[b];
    if (macros > 1) {
      floorplan_level(block, layout.rects[b], depth + 1, child_snap, child[b]);
    } else if (macros == 1) {
      // Attraction point: affinity-weighted centroid of the other Gdf
      // nodes (movable centers + fixed terminals).
      const Point attract = flow.attraction_point(b, layout.rects, region.center());
      fix_single_macro(block, layout.rects[b], attract, child[b]);
    }
  };
  if (legacy || !options_.parallel_levels) {
    // Sequential DFS. With snapshot semantics this computes exactly what
    // the scheduler computes (the differential oracle); with the legacy
    // order the interleaving is load-bearing and must stay sequential.
    for (std::size_t b = 0; b < nb; ++b) process_block(b);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      tasks.push_back([&process_block, b] { process_block(b); });
    }
    parallel_invoke(tasks, effective_thread_count(options_.num_threads));
  }

  // Post-join splice in DFS block order: byte-stable at any thread count.
  for (std::size_t b = 0; b < nb; ++b) {
    out.macros.insert(out.macros.end(), std::make_move_iterator(child[b].macros.begin()),
                      std::make_move_iterator(child[b].macros.end()));
    out.snapshots.insert(out.snapshots.end(),
                         std::make_move_iterator(child[b].snapshots.begin()),
                         std::make_move_iterator(child[b].snapshots.end()));
  }
}

// Places the block's only macro into the corner of `rect` closest to the
// attraction point (Algorithm 2, line 11: "fix position in the corner of
// the available area that minimizes wirelength").
void RecursiveFloorplanner::fix_single_macro(HtNodeId block, const Rect& rect,
                                             const Point& attract, SubtreeResult& out) {
  CellId cell = kInvalidId;
  for (const CellId m : ht_.macros_under(block)) {
    if (!store_.is_preplaced(m)) {
      cell = m;
      break;
    }
  }
  if (cell == kInvalidId) return;  // everything here was preplaced
  const MacroDef& def = design_.macro_def_of(cell);
  const double halo = options_.macro_halo;

  struct Candidate {
    Rect r;
    Orientation o;
    double cost;
  };
  std::vector<Candidate> candidates;
  for (const Orientation o : {Orientation::R0, Orientation::R90}) {
    const Point size = oriented_size(def.w, def.h, o);
    // Clamp into the rect (inset by the halo) even when it overflows;
    // the budget layout penalizes the overflow case already.
    const double w = size.x, h = size.y;
    const double x0 = rect.x + halo, y0 = rect.y + halo;
    const double x1 = std::max(x0, rect.xmax() - halo - w);
    const double y1 = std::max(y0, rect.ymax() - halo - h);
    const bool fits = w + 2 * halo <= rect.w + 1e-9 && h + 2 * halo <= rect.h + 1e-9;
    for (const auto& [cx, cy] : {std::pair{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}}) {
      const Rect r{cx, cy, w, h};
      double cost = manhattan(r.center(), attract);
      if (!fits) cost += (w * h);  // discourage non-fitting rotation
      candidates.push_back({r, o, cost});
    }
  }
  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
  Rect placed = best->r;
  // A stopped level keeps its best-so-far layout, whose block rects may
  // overflow the region (overflow is penalized, not forbidden, and the
  // legalize post-pass is skipped on stop). Clamp into the die on that
  // path so the partial result stays valid; uncancelled runs take the
  // historical geometry untouched.
  const JobControl* control = options_.job.control;
  if (control != nullptr && control->should_stop()) {
    placed.x = std::clamp(placed.x, die_.x, std::max(die_.x, die_.xmax() - placed.w));
    placed.y = std::clamp(placed.y, die_.y, std::max(die_.y, die_.ymax() - placed.h));
  }
  out.macros.push_back(MacroPlacement{cell, placed, best->o});
  store_.set_estimate(cell, placed.center());
  store_.set_region(block, placed);
}

// Defensive fallback: rows of macros across the region. Only reached on
// degenerate hierarchies (see the depth cap).
void RecursiveFloorplanner::fallback_grid_place(HtNodeId nh, const Rect& region,
                                               SubtreeResult& out) {
  std::vector<CellId> macros;
  for (const CellId m : ht_.macros_under(nh)) {
    if (!store_.is_preplaced(m)) macros.push_back(m);
  }
  if (macros.empty()) return;
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(macros.size()))));
  const int rows = static_cast<int>((macros.size() + cols - 1) / cols);
  // On a cooperative stop this fallback can be handed an arbitrarily
  // small region deep in the recursion, where the unclamped grid would
  // spill macros outside the die. Validity (every macro inside the die)
  // outranks overlap on that path; the legacy degenerate-hierarchy
  // calls keep the historical unclamped geometry bit for bit.
  const JobControl* control = options_.job.control;
  const bool clamp_to_die = control != nullptr && control->should_stop();
  for (std::size_t i = 0; i < macros.size(); ++i) {
    const MacroDef& def = design_.macro_def_of(macros[i]);
    const int r = static_cast<int>(i) / cols;
    const int c = static_cast<int>(i) % cols;
    double x = region.x + region.w * c / cols;
    double y = region.y + region.h * r / rows;
    if (clamp_to_die) {
      x = std::clamp(x, die_.x, std::max(die_.x, die_.xmax() - def.w));
      y = std::clamp(y, die_.y, std::max(die_.y, die_.ymax() - def.h));
    }
    out.macros.push_back(
        MacroPlacement{macros[i], Rect{x, y, def.w, def.h}, Orientation::R0});
    store_.set_estimate(macros[i], Point{x + def.w / 2, y + def.h / 2});
  }
}

}  // namespace hidap
