#include "core/recursive_floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "core/decluster.hpp"
#include "core/layout_optimizer.hpp"
#include "core/target_area.hpp"
#include "util/log.hpp"

namespace hidap {

namespace {
constexpr int kMaxRecursionDepth = 64;
}

RecursiveFloorplanner::RecursiveFloorplanner(const Design& design,
                                             const CellAdjacency& adjacency,
                                             const HierTree& ht, const SeqGraph& seq,
                                             const HiDaPOptions& options)
    : design_(design), adjacency_(adjacency), ht_(ht), seq_(seq), options_(options) {
  shape_curves_.resize(ht.size());
  macro_estimate_.assign(design.cell_count(), Point{});
  macro_has_estimate_.assign(design.cell_count(), false);
  region_.assign(ht.size(), Rect{});
  region_valid_.assign(ht.size(), false);
}

void RecursiveFloorplanner::generate_shape_curves() {
  // HT ids are ordered parents-before-children (hierarchy nodes in BFS
  // order, macro leaves appended last), so a descending sweep is
  // bottom-up.
  for (std::size_t i = ht_.size(); i-- > 0;) {
    const HtNodeId id = static_cast<HtNodeId>(i);
    const HtNode& node = ht_.node(id);
    if (node.subtree_macros == 0) continue;
    if (node.is_macro_leaf()) {
      const MacroDef& def = design_.macro_def_of(node.macro_cell);
      // The halo inflates the footprint the floorplanner must reserve.
      const double halo2 = 2.0 * options_.macro_halo;
      shape_curves_[i] =
          ShapeCurve::for_rect(def.w + halo2, def.h + halo2, /*rotate=*/true);
      continue;
    }
    std::vector<ShapeCurve> child_curves;
    for (const HtNodeId c : node.children) {
      if (ht_.macro_count(c) > 0) {
        child_curves.push_back(shape_curves_[static_cast<std::size_t>(c)]);
      }
    }
    if (child_curves.empty()) continue;  // defensive; cannot happen
    if (child_curves.size() == 1) {
      shape_curves_[i] = std::move(child_curves.front());
      continue;
    }
    AreaFloorplanOptions fp = options_.shape_fp;
    fp.anneal.seed = options_.seed * 0x9e3779b9ULL + i;
    shape_curves_[i] = pack_shape_curve(child_curves, fp);
  }
  curves_ready_ = true;
}

PlacementResult RecursiveFloorplanner::run(const Rect& die) {
  if (!curves_ready_) generate_shape_curves();
  result_ = PlacementResult{};
  preplaced_.clear();
  for (const MacroPlacement& m : options_.preplaced) {
    preplaced_.insert(m.cell);
    result_.macros.push_back(m);
    macro_estimate_[static_cast<std::size_t>(m.cell)] = m.rect.center();
    macro_has_estimate_[static_cast<std::size_t>(m.cell)] = true;
  }
  region_[static_cast<std::size_t>(ht_.root())] = die;
  region_valid_[static_cast<std::size_t>(ht_.root())] = true;
  if (unfixed_macro_count(ht_.root()) > 0) {
    floorplan_level(ht_.root(), die, 0);
  }
  return std::move(result_);
}

int RecursiveFloorplanner::unfixed_macro_count(HtNodeId node) const {
  if (preplaced_.empty()) return ht_.macro_count(node);
  int count = 0;
  for (const CellId m : ht_.macros_under(node)) count += !preplaced_.count(m);
  return count;
}

void RecursiveFloorplanner::update_estimates(HtNodeId block, const Point& center) {
  for (const CellId macro : ht_.macros_under(block)) {
    if (preplaced_.count(macro)) continue;  // engineer-placed: keep exact
    macro_estimate_[static_cast<std::size_t>(macro)] = center;
    macro_has_estimate_[static_cast<std::size_t>(macro)] = true;
  }
}

void RecursiveFloorplanner::floorplan_level(HtNodeId nh, const Rect& region, int depth) {
  region_[static_cast<std::size_t>(nh)] = region;
  region_valid_[static_cast<std::size_t>(nh)] = true;
  if (depth > kMaxRecursionDepth) {
    HIDAP_LOG_WARN("recursion depth cap at %s; grid fallback", ht_.path(nh).c_str());
    fallback_grid_place(nh, region);
    return;
  }

  // --- Algorithm 2, step 3: hierarchical declustering.
  const double area_nh = ht_.area(nh);
  const Declustering dec = hierarchical_declustering(
      ht_, nh, options_.open_area_frac * area_nh, options_.min_area_frac * area_nh);
  if (dec.hcb.empty()) {
    HIDAP_LOG_WARN("no blocks at level %s", ht_.path(nh).c_str());
    fallback_grid_place(nh, region);
    return;
  }

  // --- step 4: target area assignment.
  const TargetAreaResult areas =
      assign_target_areas(design_, adjacency_, ht_, nh, dec.hcb);

  // --- step 5: dataflow inference.
  const LevelDataflow flow =
      infer_level_dataflow(design_, ht_, seq_, nh, dec.hcb, macro_estimate_,
                           macro_has_estimate_, options_);

  // --- step 6: layout generation.
  LayoutProblem problem;
  problem.region = region;
  problem.terminals = flow.terminal_positions;
  problem.affinity = &flow.affinity;
  problem.num_threads = options_.num_threads;
  problem.blocks.reserve(dec.hcb.size());
  for (std::size_t b = 0; b < dec.hcb.size(); ++b) {
    BudgetBlock block;
    if (ht_.macro_count(dec.hcb[b]) > 0) {
      block.gamma = shape_curves_[static_cast<std::size_t>(dec.hcb[b])];
    }
    block.am = areas.minimum_area[b];
    block.at = areas.target_area[b];
    problem.blocks.push_back(std::move(block));
  }
  AnnealOptions anneal = options_.layout_anneal;
  anneal.seed = options_.seed * 0xd1342543de82ef95ULL + (++level_counter_);
  const LayoutSolution layout = optimize_layout(problem, anneal);

  // Snapshot for Fig. 1-style visualization.
  LevelSnapshot snap;
  snap.level = nh;
  snap.region = region;
  snap.blocks = dec.hcb;
  snap.block_rects = layout.rects;
  snap.depth = depth;
  for (const HtNodeId b : dec.hcb) snap.block_macro_counts.push_back(ht_.macro_count(b));
  result_.snapshots.push_back(std::move(snap));

  // First pass: refresh position estimates so siblings and deeper levels
  // see each other's centers.
  for (std::size_t b = 0; b < dec.hcb.size(); ++b) {
    region_[static_cast<std::size_t>(dec.hcb[b])] = layout.rects[b];
    region_valid_[static_cast<std::size_t>(dec.hcb[b])] = true;
    if (unfixed_macro_count(dec.hcb[b]) > 0) {
      update_estimates(dec.hcb[b], layout.rects[b].center());
    }
  }

  // --- steps 7-11: recurse / fix.
  for (std::size_t b = 0; b < dec.hcb.size(); ++b) {
    const HtNodeId block = dec.hcb[b];
    const int macros = unfixed_macro_count(block);
    if (macros > 1) {
      floorplan_level(block, layout.rects[b], depth + 1);
    } else if (macros == 1) {
      // Attraction point: affinity-weighted centroid of the other Gdf
      // nodes (movable centers + fixed terminals).
      const AffinityMatrix& aff = flow.affinity;
      Point attract{region.center()};
      double weight = 0.0, ax = 0.0, ay = 0.0;
      for (std::size_t j = 0; j < aff.size(); ++j) {
        if (j == b) continue;
        const double a = aff.at(b, j);
        if (a <= 0) continue;
        const Point pj = (j < dec.hcb.size()) ? layout.rects[j].center()
                                              : flow.terminal_positions[j - dec.hcb.size()];
        ax += a * pj.x;
        ay += a * pj.y;
        weight += a;
      }
      if (weight > 0) attract = Point{ax / weight, ay / weight};
      fix_single_macro(block, layout.rects[b], attract);
    }
  }
}

// Places the block's only macro into the corner of `rect` closest to the
// attraction point (Algorithm 2, line 11: "fix position in the corner of
// the available area that minimizes wirelength").
void RecursiveFloorplanner::fix_single_macro(HtNodeId block, const Rect& rect,
                                             const Point& attract) {
  CellId cell = kInvalidId;
  for (const CellId m : ht_.macros_under(block)) {
    if (!preplaced_.count(m)) {
      cell = m;
      break;
    }
  }
  if (cell == kInvalidId) return;  // everything here was preplaced
  const MacroDef& def = design_.macro_def_of(cell);
  const double halo = options_.macro_halo;

  struct Candidate {
    Rect r;
    Orientation o;
    double cost;
  };
  std::vector<Candidate> candidates;
  for (const Orientation o : {Orientation::R0, Orientation::R90}) {
    const Point size = oriented_size(def.w, def.h, o);
    // Clamp into the rect (inset by the halo) even when it overflows;
    // the budget layout penalizes the overflow case already.
    const double w = size.x, h = size.y;
    const double x0 = rect.x + halo, y0 = rect.y + halo;
    const double x1 = std::max(x0, rect.xmax() - halo - w);
    const double y1 = std::max(y0, rect.ymax() - halo - h);
    const bool fits = w + 2 * halo <= rect.w + 1e-9 && h + 2 * halo <= rect.h + 1e-9;
    for (const auto& [cx, cy] : {std::pair{x0, y0}, {x1, y0}, {x0, y1}, {x1, y1}}) {
      const Rect r{cx, cy, w, h};
      double cost = manhattan(r.center(), attract);
      if (!fits) cost += (w * h);  // discourage non-fitting rotation
      candidates.push_back({r, o, cost});
    }
  }
  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
  result_.macros.push_back(MacroPlacement{cell, best->r, best->o});
  macro_estimate_[static_cast<std::size_t>(cell)] = best->r.center();
  macro_has_estimate_[static_cast<std::size_t>(cell)] = true;
  region_[static_cast<std::size_t>(block)] = best->r;
  region_valid_[static_cast<std::size_t>(block)] = true;
}

// Defensive fallback: rows of macros across the region. Only reached on
// degenerate hierarchies (see the depth cap).
void RecursiveFloorplanner::fallback_grid_place(HtNodeId nh, const Rect& region) {
  std::vector<CellId> macros;
  for (const CellId m : ht_.macros_under(nh)) {
    if (!preplaced_.count(m)) macros.push_back(m);
  }
  if (macros.empty()) return;
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(macros.size()))));
  const int rows = static_cast<int>((macros.size() + cols - 1) / cols);
  for (std::size_t i = 0; i < macros.size(); ++i) {
    const MacroDef& def = design_.macro_def_of(macros[i]);
    const int r = static_cast<int>(i) / cols;
    const int c = static_cast<int>(i) % cols;
    const double x = region.x + region.w * c / cols;
    const double y = region.y + region.h * r / rows;
    result_.macros.push_back(
        MacroPlacement{macros[i], Rect{x, y, def.w, def.h}, Orientation::R0});
    macro_estimate_[static_cast<std::size_t>(macros[i])] = Point{x + def.w / 2, y + def.h / 2};
    macro_has_estimate_[static_cast<std::size_t>(macros[i])] = true;
  }
}

}  // namespace hidap
