#include "core/dataflow_inference.hpp"

#include <cassert>
#include <unordered_map>

#include "util/log.hpp"

namespace hidap {

namespace {

// HT node hosting a Gseq element.
HtNodeId ht_of_seq(const HierTree& ht, const SeqGraph& seq, SeqNodeId n) {
  const SeqNode& node = seq.node(n);
  if (node.kind == SeqKind::Macro) return ht.node_of_cell(node.macro_cell);
  return ht.node_of_hier(node.hier);
}

}  // namespace

Point LevelDataflow::node_center(std::size_t j, const std::vector<Rect>& block_rects) const {
  assert(block_rects.size() == movable_count);
  assert(j < movable_count + terminal_positions.size());
  return j < movable_count ? block_rects[j].center()
                           : terminal_positions[j - movable_count];
}

Point LevelDataflow::attraction_point(std::size_t b, const std::vector<Rect>& block_rects,
                                      const Point& fallback) const {
  assert(b < movable_count);
  double weight = 0.0, ax = 0.0, ay = 0.0;
  for (std::size_t j = 0; j < affinity.size(); ++j) {
    if (j == b) continue;
    const double a = affinity.at(b, j);
    if (a <= 0) continue;
    const Point pj = node_center(j, block_rects);
    ax += a * pj.x;
    ay += a * pj.y;
    weight += a;
  }
  if (weight > 0) return Point{ax / weight, ay / weight};
  return fallback;
}

LevelDataflow infer_level_dataflow(const Design& design, const HierTree& ht,
                                   const SeqGraph& seq, HtNodeId nh,
                                   const std::vector<HtNodeId>& hcb,
                                   const EstimateSnapshot& estimates,
                                   const HiDaPOptions& options) {
  LevelDataflow out;
  out.gdf = std::make_unique<DataflowGraph>(seq);
  out.movable_count = hcb.size();

  // Block index per HT node for the HCB roots.
  std::unordered_map<HtNodeId, int> block_of_root;
  for (std::size_t b = 0; b < hcb.size(); ++b) {
    block_of_root[hcb[b]] = static_cast<int>(b);
  }

  // Classify every Gseq node: member of block b / port / outside macro /
  // glue. Walk up the HT from the hosting node; hitting an HCB root first
  // means membership, hitting nh means in-scope glue.
  std::vector<std::vector<SeqNodeId>> members(hcb.size());
  std::vector<SeqNodeId> port_nodes;
  std::vector<SeqNodeId> outside_macros;
  for (SeqNodeId n = 0; n < static_cast<SeqNodeId>(seq.node_count()); ++n) {
    const SeqNode& node = seq.node(n);
    if (node.kind == SeqKind::Port) {
      port_nodes.push_back(n);
      continue;
    }
    HtNodeId walk = ht_of_seq(ht, seq, n);
    int owner = -1;
    bool in_scope = false;
    while (true) {
      const auto it = block_of_root.find(walk);
      if (it != block_of_root.end()) {
        owner = it->second;
        break;
      }
      if (walk == nh) {
        in_scope = true;
        break;
      }
      if (walk == ht.root()) break;
      walk = ht.node(walk).parent;
    }
    if (owner >= 0) {
      members[static_cast<std::size_t>(owner)].push_back(n);
    } else if (!in_scope && node.kind == SeqKind::Macro) {
      outside_macros.push_back(n);
    }
    // In-scope glue registers and outside registers stay unassigned: the
    // BFS may traverse them.
  }

  // Movable block nodes, in HCB order (affinity row b == block b).
  for (std::size_t b = 0; b < hcb.size(); ++b) {
    DfNode node;
    node.kind = DfKind::Block;
    node.name = ht.path(hcb[b]);
    node.members = std::move(members[b]);
    out.gdf->add_node(std::move(node));
  }
  // Fixed terminals: port groups.
  for (const SeqNodeId p : port_nodes) {
    DfNode node;
    node.kind = DfKind::PortGroup;
    node.name = seq.node(p).base_name;
    node.members = {p};
    node.fixed = true;
    Point pos;
    int counted = 0;
    for (const CellId bit : seq.node(p).bits) {
      if (design.cell(bit).fixed_pos) {
        pos.x += design.cell(bit).fixed_pos->x;
        pos.y += design.cell(bit).fixed_pos->y;
        ++counted;
      }
    }
    if (counted > 0) {
      pos.x /= counted;
      pos.y /= counted;
    }
    node.position = pos;
    out.terminal_positions.push_back(pos);
    out.gdf->add_node(std::move(node));
  }
  // Fixed terminals: macros outside nh with a position estimate.
  for (const SeqNodeId m : outside_macros) {
    const CellId cell = seq.node(m).macro_cell;
    if (!estimates.has_estimate(cell)) continue;
    DfNode node;
    node.kind = DfKind::FixedMacros;
    node.name = seq.node(m).base_name;
    node.members = {m};
    node.fixed = true;
    node.position = estimates.estimate(cell);
    out.terminal_positions.push_back(node.position);
    out.gdf->add_node(std::move(node));
  }

  out.gdf->infer_edges(DataflowOptions{options.max_latency});
  out.affinity =
      compute_affinity(*out.gdf, AffinityOptions{options.lambda, options.k, true});
  return out;
}

}  // namespace hidap
