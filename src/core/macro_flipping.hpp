#pragma once
// Macro flipping post-process (paper Algorithm 1, step "macro_flipping").
//
// For each placed macro, the footprint-preserving orientations (identity,
// mirror X, mirror Y, 180 degrees -- applied on top of the rotation group
// chosen during placement) are evaluated by the HPWL of the nets attached
// to the macro's pins; the best is kept. Standard-cell endpoints are
// approximated by the center of the innermost floorplan rectangle of
// their hierarchy node, which is exactly the "macro side dataflow" signal
// the paper exploits: flipping pays off when a macro's data pins face the
// logic they talk to.

#include <cstdint>
#include <set>
#include <vector>

#include "core/result.hpp"
#include "hier/hier_tree.hpp"
#include "netlist/netlist.hpp"

namespace hidap {

struct FlippingStats {
  int flips = 0;
  int passes = 0;
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
};

/// Mutates `macros` orientations in place. `region`/`region_valid` come
/// from RecursiveFloorplanner::region_of_node() (one byte per node --
/// the recursion's sibling-subtree tasks write the flags concurrently,
/// which std::vector<bool>'s packed bits could not tolerate). Macros in
/// `skip` keep their orientation (preplaced by the user).
FlippingStats flip_macros(const Design& design, const HierTree& ht,
                          const std::vector<Rect>& region,
                          const std::vector<std::uint8_t>& region_valid,
                          std::vector<MacroPlacement>& macros, int max_passes = 4,
                          const std::set<CellId>* skip = nullptr);

}  // namespace hidap
