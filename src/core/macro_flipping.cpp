#include "core/macro_flipping.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "util/log.hpp"

namespace hidap {

namespace {

// Orientation candidates sharing the footprint of `current`.
std::array<Orientation, 4> candidates_for(Orientation current) {
  switch (current) {
    case Orientation::R0:
    case Orientation::MX:
    case Orientation::MY:
    case Orientation::R180:
      return {Orientation::R0, Orientation::MX, Orientation::MY, Orientation::R180};
    default:
      return {Orientation::R90, Orientation::MX90, Orientation::MY90, Orientation::R270};
  }
}

class FlipEvaluator {
 public:
  FlipEvaluator(const Design& design, const HierTree& ht, const std::vector<Rect>& region,
                const std::vector<std::uint8_t>& region_valid,
                std::vector<MacroPlacement>& macros)
      : design_(design),
        ht_(ht),
        region_(region),
        region_valid_(region_valid),
        macros_(macros) {
    for (std::size_t i = 0; i < macros.size(); ++i) {
      placement_of_[macros[i].cell] = static_cast<int>(i);
    }
    // Nets attached to at least one macro, with the positions of their
    // non-macro endpoints folded into a fixed bounding box.
    for (std::size_t n = 0; n < design.net_count(); ++n) {
      const Net& net = design.net(static_cast<NetId>(n));
      bool touches_macro = false;
      auto scan = [&](const NetPin& p) {
        if (design.cell(p.cell).kind == CellKind::Macro) touches_macro = true;
      };
      if (net.driver.cell != kInvalidId) scan(net.driver);
      for (const NetPin& p : net.sinks) scan(p);
      if (!touches_macro) continue;
      MacroNet mn;
      mn.net = static_cast<NetId>(n);
      auto classify = [&](const NetPin& p) {
        const Cell& c = design.cell(p.cell);
        if (c.kind == CellKind::Macro) {
          const auto it = placement_of_.find(p.cell);
          if (it != placement_of_.end()) {
            mn.macro_pins.push_back({it->second, Point{p.dx, p.dy}});
            return;
          }
        }
        mn.fixed_points.push_back(endpoint_position(p));
      };
      if (net.driver.cell != kInvalidId) classify(net.driver);
      for (const NetPin& p : net.sinks) classify(p);
      if (mn.macro_pins.empty()) continue;
      const std::size_t idx = macro_nets_.size();
      macro_nets_.push_back(std::move(mn));
      for (const auto& [pl, off] : macro_nets_.back().macro_pins) {
        nets_of_macro_[pl].push_back(idx);
      }
    }
  }

  double total_hpwl() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < macro_nets_.size(); ++i) sum += net_hpwl(i);
    return sum;
  }

  /// HPWL of the nets touching macro `pl` if it had orientation `o`.
  double macro_hpwl(int pl, Orientation o) const {
    const Orientation saved = macros_[static_cast<std::size_t>(pl)].orientation;
    macros_[static_cast<std::size_t>(pl)].orientation = o;
    double sum = 0.0;
    const auto it = nets_of_macro_.find(pl);
    if (it != nets_of_macro_.end()) {
      for (const std::size_t n : it->second) sum += net_hpwl(n);
    }
    macros_[static_cast<std::size_t>(pl)].orientation = saved;
    return sum;
  }

 private:
  struct MacroNet {
    NetId net = kInvalidId;
    std::vector<std::pair<int, Point>> macro_pins;  // (placement idx, R0 offset)
    std::vector<Point> fixed_points;
  };

  // Estimated position of a non-macro endpoint: its port location when
  // fixed, else the center of the innermost placed floorplan rectangle of
  // its hierarchy node.
  Point endpoint_position(const NetPin& p) const {
    const Cell& c = design_.cell(p.cell);
    if (c.fixed_pos) return *c.fixed_pos;
    HtNodeId walk = ht_.node_of_cell(p.cell);
    while (true) {
      if (region_valid_[static_cast<std::size_t>(walk)]) {
        return region_[static_cast<std::size_t>(walk)].center();
      }
      if (walk == ht_.root()) return Point{};
      walk = ht_.node(walk).parent;
    }
  }

  Point macro_pin_position(int pl, const Point& offset) const {
    const MacroPlacement& m = macros_[static_cast<std::size_t>(pl)];
    // The placed rect stores the oriented footprint; recover the R0 size.
    const bool swapped = swaps_dimensions(m.orientation);
    const double w0 = swapped ? m.rect.h : m.rect.w;
    const double h0 = swapped ? m.rect.w : m.rect.h;
    const Point local = transform_pin(offset, w0, h0, m.orientation);
    return {m.rect.x + local.x, m.rect.y + local.y};
  }

  double net_hpwl(std::size_t n) const {
    const MacroNet& mn = macro_nets_[n];
    double xmin = std::numeric_limits<double>::max(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    auto absorb = [&](const Point& p) {
      xmin = std::min(xmin, p.x);
      xmax = std::max(xmax, p.x);
      ymin = std::min(ymin, p.y);
      ymax = std::max(ymax, p.y);
    };
    for (const Point& p : mn.fixed_points) absorb(p);
    for (const auto& [pl, off] : mn.macro_pins) absorb(macro_pin_position(pl, off));
    if (xmax < xmin) return 0.0;
    return (xmax - xmin) + (ymax - ymin);
  }

  const Design& design_;
  const HierTree& ht_;
  const std::vector<Rect>& region_;
  const std::vector<std::uint8_t>& region_valid_;
  std::vector<MacroPlacement>& macros_;
  std::vector<MacroNet> macro_nets_;
  std::unordered_map<int, std::vector<std::size_t>> nets_of_macro_;
  std::unordered_map<CellId, int> placement_of_;
};

}  // namespace

FlippingStats flip_macros(const Design& design, const HierTree& ht,
                          const std::vector<Rect>& region,
                          const std::vector<std::uint8_t>& region_valid,
                          std::vector<MacroPlacement>& macros, int max_passes,
                          const std::set<CellId>* skip) {
  FlippingStats stats;
  FlipEvaluator eval(design, ht, region, region_valid, macros);
  stats.hpwl_before = eval.total_hpwl();
  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    int flips_this_pass = 0;
    for (std::size_t i = 0; i < macros.size(); ++i) {
      if (skip && skip->count(macros[i].cell)) continue;
      const Orientation current = macros[i].orientation;
      Orientation best = current;
      double best_cost = eval.macro_hpwl(static_cast<int>(i), current);
      for (const Orientation o : candidates_for(current)) {
        if (o == current) continue;
        const double cost = eval.macro_hpwl(static_cast<int>(i), o);
        if (cost + 1e-9 < best_cost) {
          best_cost = cost;
          best = o;
        }
      }
      if (best != current) {
        macros[i].orientation = best;
        ++flips_this_pass;
      }
    }
    stats.flips += flips_this_pass;
    if (flips_this_pass == 0) break;
  }
  stats.hpwl_after = eval.total_hpwl();
  HIDAP_LOG_DEBUG("flipping: %d flips in %d passes, macro-net HPWL %.3g -> %.3g",
                  stats.flips, stats.passes, stats.hpwl_before, stats.hpwl_after);
  return stats;
}

}  // namespace hidap
