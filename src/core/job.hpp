#pragma once
// Per-job placement state, split out of HiDaPOptions.
//
// HiDaPOptions used to mix two kinds of state: algorithm configuration
// (lambda, declustering thresholds, SA schedules) that a long-lived
// session shares across many requests, and per-job state (the RNG seed,
// the engineer's preplaced macros, and -- since the service refactor --
// the cancellation/deadline/progress handle) that belongs to one
// placement run. JobState is the latter; HiDaPOptions embeds one as
// `job` so a single options value still flows through the pipeline,
// but the split is explicit in the type system and the service layer
// (src/service/) can stamp a fresh JobState onto shared base options
// for every request.

#include <cstdint>
#include <vector>

#include "core/result.hpp"
#include "util/job_control.hpp"

namespace hidap {

struct JobState {
  std::uint64_t seed = 1;

  // Macros preplaced by the engineer: they are not moved, act as fixed
  // dataflow terminals, and are copied verbatim into the result. This is
  // the "starting point for physical design iterations" workflow of the
  // paper's conclusions.
  std::vector<MacroPlacement> preplaced;

  // Cooperative cancellation / deadline / progress handle. Non-owning:
  // the caller keeps the JobControl alive for the duration of the run.
  // Null = uncontrolled, the run never stops early and posts no
  // progress -- bit-identical to the pre-service behavior.
  JobControl* control = nullptr;

  /// True when this job has been asked to stop (cancel or deadline).
  bool should_stop() const { return control && control->should_stop(); }
};

}  // namespace hidap
