#pragma once
// Macro-center estimate state of the recursive floorplanner, with
// explicit snapshot semantics (paper Algorithm 2, the "prototype
// positions" every deeper level anchors its dataflow inference to).
//
// The recursion refines a per-macro position estimate top-down: every
// level writes the centers of its committed block rectangles for the
// macros under each block, single-macro fixes write exact footprints,
// and dataflow inference reads the estimates of macros *outside* the
// level being floorplanned. Extracting that state out of the
// floorplanner makes its aliasing discipline explicit:
//
//  * EstimateStore is the live, mutable state. Writes are slot-disjoint
//    by construction -- a recursion subtree only ever writes the cells
//    under its own HT node and the regions of nodes in its own subtree,
//    and sibling subtrees are rooted at disjoint HT subtrees -- so
//    concurrent sibling-subtree tasks may write the store without
//    synchronization (all flag arrays are std::uint8_t, one byte per
//    slot; never std::vector<bool>, whose packed bits would race).
//  * EstimateSnapshot is an immutable copy of the estimates as of one
//    commit point. Under snapshot semantics every level's dataflow
//    inference reads its parent's committed snapshot (parent layout
//    prototypes), never the live store, which is what makes sibling
//    subtrees data-independent and schedulable in any order -- including
//    concurrently -- with bit-identical results.
//
// The legacy (pre-scheduler) estimate order is expressible in the same
// vocabulary: a sequential DFS that snapshots the live store at each
// level entry reads exactly the refinements committed by earlier
// siblings, which is the old behavior verbatim.

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "geometry/geometry.hpp"
#include "hier/hier_tree.hpp"
#include "netlist/netlist.hpp"

namespace hidap {

/// Immutable per-cell macro-center estimates as of one commit point.
/// Default-constructed snapshots carry no estimates at all (every
/// has_estimate() is false), which is the state of the first level of a
/// fresh run without preplaced macros.
class EstimateSnapshot {
 public:
  EstimateSnapshot() = default;
  explicit EstimateSnapshot(std::size_t cell_count)
      : pos_(cell_count, Point{}), has_(cell_count, 0) {}

  std::size_t cell_count() const { return pos_.size(); }

  bool has_estimate(CellId cell) const {
    const auto i = static_cast<std::size_t>(cell);
    return i < has_.size() && has_[i] != 0;
  }

  const Point& estimate(CellId cell) const {
    const auto i = static_cast<std::size_t>(cell);
    assert(i < pos_.size() && has_[i] != 0);
    return pos_[i];
  }

  /// Overwrites one cell's estimate (used to derive a child level's
  /// snapshot from its parent's: copy, then apply the level's prototype
  /// writes).
  void set(CellId cell, const Point& p) {
    const auto i = static_cast<std::size_t>(cell);
    assert(i < pos_.size());
    pos_[i] = p;
    has_[i] = 1;
  }

 private:
  friend class EstimateStore;  // snapshot() adopts the arrays wholesale
  EstimateSnapshot(std::vector<Point> pos, std::vector<std::uint8_t> has)
      : pos_(std::move(pos)), has_(std::move(has)) {}

  std::vector<Point> pos_;
  std::vector<std::uint8_t> has_;
};

/// Live estimate + region state of one floorplanner run. See the file
/// comment for the write-disjointness contract that makes concurrent
/// sibling-subtree writers safe.
class EstimateStore {
 public:
  EstimateStore(std::size_t cell_count, std::size_t node_count)
      : pos_(cell_count, Point{}),
        has_(cell_count, 0),
        preplaced_(cell_count, 0),
        region_(node_count, Rect{}),
        region_valid_(node_count, 0) {}

  /// Clears every estimate and region, then seeds the engineer-fixed
  /// macros: preplaced cells get their exact centers as estimates and are
  /// excluded from future writes.
  void reset(const std::vector<MacroPlacement>& preplaced);

  std::size_t cell_count() const { return pos_.size(); }
  std::size_t node_count() const { return region_.size(); }

  bool is_preplaced(CellId cell) const {
    return preplaced_[static_cast<std::size_t>(cell)] != 0;
  }
  int preplaced_count() const { return preplaced_count_; }

  /// Disjoint-slot write (see the contract above). Preplaced cells keep
  /// their exact positions; callers filter them out before writing.
  void set_estimate(CellId cell, const Point& p) {
    const auto i = static_cast<std::size_t>(cell);
    assert(preplaced_[i] == 0 && "preplaced estimates are immutable");
    pos_[i] = p;
    has_[i] = 1;
  }

  bool has_estimate(CellId cell) const {
    return has_[static_cast<std::size_t>(cell)] != 0;
  }
  const Point& estimate(CellId cell) const {
    const auto i = static_cast<std::size_t>(cell);
    assert(has_[i] != 0);
    return pos_[i];
  }

  /// Copy of the current live estimates. Only meaningful from code that
  /// is sequenced against every writer (the legacy DFS, or run() setup /
  /// teardown); taking one while sibling tasks run would tear.
  EstimateSnapshot snapshot() const;

  /// Region assigned to an HT node during the recursion. Same
  /// disjointness contract as the estimates: a subtree only writes nodes
  /// of its own subtree.
  void set_region(HtNodeId node, const Rect& r) {
    region_[static_cast<std::size_t>(node)] = r;
    region_valid_[static_cast<std::size_t>(node)] = 1;
  }
  const std::vector<Rect>& region_of_node() const { return region_; }
  const std::vector<std::uint8_t>& region_valid() const { return region_valid_; }

 private:
  std::vector<Point> pos_;             // per CellId
  std::vector<std::uint8_t> has_;      // per CellId
  std::vector<std::uint8_t> preplaced_;  // per CellId
  int preplaced_count_ = 0;
  std::vector<Rect> region_;              // per HtNodeId
  std::vector<std::uint8_t> region_valid_;  // per HtNodeId
};

}  // namespace hidap
