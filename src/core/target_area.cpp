#include "core/target_area.hpp"

#include <deque>

#include "util/log.hpp"

namespace hidap {

TargetAreaResult assign_target_areas(const Design& design, const CellAdjacency& adjacency,
                                     const HierTree& ht, HtNodeId nh,
                                     const std::vector<HtNodeId>& hcb) {
  TargetAreaResult result;
  result.minimum_area.resize(hcb.size());
  result.target_area.resize(hcb.size());
  result.glue_owner.assign(design.cell_count(), -1);

  // Mark cells belonging to each block (by hcb index) and cells in scope
  // (under nh). -2 = in scope but glue; -1 = out of scope.
  std::vector<int> zone(design.cell_count(), -1);
  for (const CellId c : ht.cells_under(nh)) zone[static_cast<std::size_t>(c)] = -2;
  for (std::size_t b = 0; b < hcb.size(); ++b) {
    result.minimum_area[b] = ht.area(hcb[b]);
    result.target_area[b] = result.minimum_area[b];
    for (const CellId c : ht.cells_under(hcb[b])) {
      zone[static_cast<std::size_t>(c)] = static_cast<int>(b);
    }
  }

  // Multi-source BFS over the undirected Gnet adjacency. Sources: every
  // block cell; targets: glue cells in scope.
  std::deque<std::pair<CellId, int>> queue;  // (cell, owning block)
  std::vector<bool> visited(design.cell_count(), false);
  for (std::size_t i = 0; i < design.cell_count(); ++i) {
    if (zone[i] >= 0) {
      visited[i] = true;
      queue.emplace_back(static_cast<CellId>(i), zone[i]);
    }
  }
  double claimed = 0.0;
  while (!queue.empty()) {
    const auto [cell, owner] = queue.front();
    queue.pop_front();
    adjacency.for_each_neighbor(cell, [&](CellId next) {
      if (visited[static_cast<std::size_t>(next)]) return;
      if (zone[static_cast<std::size_t>(next)] != -2) return;  // out of scope
      visited[static_cast<std::size_t>(next)] = true;
      result.glue_owner[static_cast<std::size_t>(next)] = owner;
      const double area = design.cell(next).area;
      result.target_area[static_cast<std::size_t>(owner)] += area;
      claimed += area;
      queue.emplace_back(next, owner);
    });
  }

  // Unreachable glue (disconnected logic): spread proportionally to am so
  // the instance area is fully covered, as the paper requires.
  double orphan = 0.0;
  for (std::size_t i = 0; i < design.cell_count(); ++i) {
    if (zone[i] == -2 && !visited[i]) orphan += design.cell(i).area;
  }
  result.unassigned_area = orphan;
  if (orphan > 0 && !hcb.empty()) {
    double am_sum = 0.0;
    for (const double a : result.minimum_area) am_sum += a;
    for (std::size_t b = 0; b < hcb.size(); ++b) {
      const double share = am_sum > 0 ? result.minimum_area[b] / am_sum
                                      : 1.0 / static_cast<double>(hcb.size());
      result.target_area[b] += orphan * share;
    }
    HIDAP_LOG_DEBUG("target_area: %.0f um^2 of unreachable glue spread over %zu blocks",
                    orphan, hcb.size());
  }
  (void)claimed;
  return result;
}

}  // namespace hidap
