#pragma once
// Hierarchical declustering (paper Algorithm 3 / Fig. 5).
//
// Finds the hierarchy cut for floorplanning level nh: HCB holds the nodes
// modeled as blocks (big area or containing macros), HCG the small glue
// nodes whose area is later folded into blocks by target-area assignment.
//
// Per DESIGN.md interpretation #1, the queue is seeded with children(nh)
// -- nh itself is always opened, otherwise a macro-bearing root would
// degenerate into a single block. Childless nodes that satisfy the "open"
// condition are classified by the block test instead (interpretation #2).

#include <vector>

#include "hier/hier_tree.hpp"

namespace hidap {

struct Declustering {
  std::vector<HtNodeId> hcb;  ///< blocks for layout generation
  std::vector<HtNodeId> hcg;  ///< glue nodes
};

/// `open_area` and `min_area` are absolute areas (the caller multiplies
/// the paper's fractions by area(nh)).
Declustering hierarchical_declustering(const HierTree& ht, HtNodeId nh,
                                       double open_area, double min_area);

}  // namespace hidap
