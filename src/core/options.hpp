#pragma once
// HiDaP configuration. Defaults follow the paper where it states values
// (min_area 40% / open_area 1% of area(nh), lambda in {0.2, 0.5, 0.8}).

#include <cstdint>
#include <vector>

#include "core/job.hpp"
#include "core/result.hpp"
#include "dataflow/seq_extract.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/area_floorplanner.hpp"

namespace hidap {

struct HiDaPOptions {
  // Dataflow affinity (sect. IV-D).
  double lambda = 0.5;  ///< block-flow vs macro-flow balance
  double k = 2.0;       ///< latency decay exponent in score(h, k)
  int max_latency = 24; ///< BFS horizon (register hops)

  // Gseq extraction.
  SeqExtractOptions seq;

  // Hierarchical declustering (sect. IV-B): fractions of area(nh).
  double min_area_frac = 0.40;
  double open_area_frac = 0.01;

  // Layout generation SA (sect. IV-E).
  AnnealOptions layout_anneal;

  // Shape-curve generation SA (sect. IV-A).
  AreaFloorplanOptions shape_fp;

  // Macro flipping post-process: maximum improvement passes.
  int flipping_passes = 4;

  // Keep-out margin around every macro (um). Honored by shape curves,
  // corner snapping and the final legalization pass; standard industrial
  // knob for router/CTS access around memories.
  double macro_halo = 0.0;

  // Per-job state (seed, preplaced macros, cancellation/progress
  // handle), split out of the algorithm configuration above so a
  // long-lived session can share one HiDaPOptions and stamp a fresh
  // JobState per request. See core/job.hpp.
  JobState job;

  // Task-level parallelism (runtime/thread_pool.hpp): lambda/seed
  // sweeps, multi-chain SA, the flow comparison and the recursion
  // scheduler shard over the global pool. 0 = auto (HIDAP_THREADS or
  // hardware concurrency); 1 reproduces the sequential behavior
  // exactly. Results are bit-identical at any setting.
  int num_threads = 0;

  // Hierarchical task-graph scheduler (Algorithm 2's recursion as pool
  // tasks): independent sibling subtrees anneal concurrently. Under the
  // snapshot estimate semantics below, siblings are data-independent by
  // construction, so placements are bit-identical at any thread count;
  // `false` runs the same snapshot-semantics recursion as a plain
  // sequential DFS (the differential oracle for the scheduler).
  bool parallel_levels = true;

  // Pre-scheduler estimate semantics: a level's dataflow inference sees
  // every refinement already committed by earlier siblings in DFS order
  // (order-dependent, hence sequential-only). Kept reachable for the
  // estimate-semantics golden pair and as the bit-exact continuation of
  // the pre-PR5 flow; overrides parallel_levels when set.
  bool legacy_estimate_order = false;

  // Overlap shape-curve generation with the recursion front: run() then
  // dispatches the depth-rank curve shards as a sibling pool task and
  // joins it right before the level-0 anneal first reads a curve, hiding
  // the curve wall behind recursion planning, target-area assignment and
  // dataflow inference. Curves and placements are bit-identical either
  // way (the shards write only shape_curves_, which nothing in the
  // overlap window reads, and per-node seeds ignore scheduling); with
  // one thread the dispatch degenerates to the eager call.
  bool overlap_curves = true;

  // Per-level anneal effort auto-scaling (off by default; --anneal-
  // autoscale to opt in): moves-per-temperature of each level's layout
  // anneal scales with the level's block count via autoscaled_moves(),
  // spending schedule length where the move space is large instead of
  // uniformly. Changes the accept stream by design, so it is excluded
  // from all bit-identity contracts; BENCH_pr10.json records its
  // Table II quality/wall tradeoff.
  bool anneal_autoscale = false;

  /// Scales SA effort (moves per temperature, cooling) by a factor;
  /// benches use ~0.3-1, the handFP proxy ~3.
  void scale_effort(double factor);

  /// Paper's HiDaP flow runs lambda in {0.2, 0.5, 0.8} and keeps the best.
  static constexpr double kLambdaSweep[3] = {0.2, 0.5, 0.8};
};

}  // namespace hidap
