#pragma once
// Per-level dataflow inference (paper Algorithm 2, step 5).
//
// For a recursion level nh with blocks HCB, builds the level's Gdf over
// the global Gseq: one movable node per block (members = Gseq elements
// under the block subtree), one fixed node per multi-bit port group and
// one per already-estimated macro outside nh (sect. IV-E: "the position
// of ports and macros outside the subtree are considered a fixed point").
// Runs the block-flow/macro-flow searches and scores the affinity matrix.

#include <memory>
#include <vector>

#include "core/options.hpp"
#include "dataflow/affinity.hpp"
#include "dataflow/dataflow_graph.hpp"
#include "hier/hier_tree.hpp"

namespace hidap {

struct LevelDataflow {
  std::unique_ptr<DataflowGraph> gdf;  ///< nodes: blocks first, then terminals
  AffinityMatrix affinity{0};
  std::size_t movable_count = 0;
  std::vector<Point> terminal_positions;  ///< gdf node movable_count + i
};

/// `macro_estimate[cell]` / `macro_has_estimate[cell]` give the current
/// position guess of every macro cell (block centers refined during the
/// recursion); macros outside nh without an estimate are skipped (only
/// possible at the first level, where there is no outside).
LevelDataflow infer_level_dataflow(const Design& design, const HierTree& ht,
                                   const SeqGraph& seq, HtNodeId nh,
                                   const std::vector<HtNodeId>& hcb,
                                   const std::vector<Point>& macro_estimate,
                                   const std::vector<bool>& macro_has_estimate,
                                   const HiDaPOptions& options);

}  // namespace hidap
