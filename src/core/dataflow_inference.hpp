#pragma once
// Per-level dataflow inference (paper Algorithm 2, step 5).
//
// For a recursion level nh with blocks HCB, builds the level's Gdf over
// the global Gseq: one movable node per block (members = Gseq elements
// under the block subtree), one fixed node per multi-bit port group and
// one per already-estimated macro outside nh (sect. IV-E: "the position
// of ports and macros outside the subtree are considered a fixed point").
// Runs the block-flow/macro-flow searches and scores the affinity matrix.

#include <memory>
#include <vector>

#include "core/estimate_store.hpp"
#include "core/options.hpp"
#include "dataflow/affinity.hpp"
#include "dataflow/dataflow_graph.hpp"
#include "hier/hier_tree.hpp"

namespace hidap {

struct LevelDataflow {
  std::unique_ptr<DataflowGraph> gdf;  ///< nodes: blocks first, then terminals
  AffinityMatrix affinity{0};
  std::size_t movable_count = 0;
  std::vector<Point> terminal_positions;  ///< gdf node movable_count + i

  /// Center of Gdf node `j` given this level's block rectangles: movable
  /// nodes (j < movable_count) read the layout rects, fixed terminals
  /// their stored positions. The single implementation behind every
  /// attraction computation, so the scheduler and legacy recursion paths
  /// cannot drift apart on the terminal index offset.
  Point node_center(std::size_t j, const std::vector<Rect>& block_rects) const;

  /// Affinity-weighted centroid of every Gdf node other than block `b`
  /// (Algorithm 2, line 11's attraction point for single-macro blocks);
  /// `fallback` is returned when block b has no positive affinity.
  Point attraction_point(std::size_t b, const std::vector<Rect>& block_rects,
                         const Point& fallback) const;
};

/// `estimates` carries the current position guess of every macro cell
/// (block-center prototypes refined during the recursion). Under
/// snapshot semantics this is the parent level's committed snapshot;
/// under the legacy estimate order, the live store at the DFS visit.
/// Macros outside nh without an estimate are skipped (only possible at
/// the first level, where there is no outside).
LevelDataflow infer_level_dataflow(const Design& design, const HierTree& ht,
                                   const SeqGraph& seq, HtNodeId nh,
                                   const std::vector<HtNodeId>& hcb,
                                   const EstimateSnapshot& estimates,
                                   const HiDaPOptions& options);

}  // namespace hidap
