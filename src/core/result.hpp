#pragma once
// Output types of the macro placement flows.

#include <string>
#include <vector>

#include "geometry/geometry.hpp"
#include "geometry/orientation.hpp"
#include "hier/hier_tree.hpp"
#include "netlist/netlist.hpp"
#include "util/job_control.hpp"

namespace hidap {

struct MacroPlacement {
  CellId cell = kInvalidId;
  Rect rect;                               ///< placed footprint on the die
  Orientation orientation = Orientation::R0;
  Point center() const { return rect.center(); }
};

/// Rectangles assigned to the blocks of one recursion level -- the data
/// behind the paper's Fig. 1 evolution snapshots.
struct LevelSnapshot {
  HtNodeId level = kInvalidId;  ///< the nh being floorplanned
  Rect region;
  std::vector<HtNodeId> blocks;
  std::vector<Rect> block_rects;
  std::vector<int> block_macro_counts;
  int depth = 0;  ///< recursion depth (root = 0)
};

struct PlacementResult {
  std::vector<MacroPlacement> macros;
  std::vector<LevelSnapshot> snapshots;
  double runtime_seconds = 0.0;
  std::string flow_name;

  /// Completed for a full run. Cancelled / DeadlineExpired runs are
  /// still valid placements (every macro placed) but partial-quality:
  /// levels below the stop point fall back to cheap grid prototypes and
  /// the flipping/legalization post-passes are skipped.
  JobStatus status = JobStatus::Completed;

  const MacroPlacement* find(CellId cell) const {
    for (const MacroPlacement& m : macros) {
      if (m.cell == cell) return &m;
    }
    return nullptr;
  }
};

}  // namespace hidap
