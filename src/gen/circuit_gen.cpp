#include "gen/circuit_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace hidap {

namespace {

// Builder helpers carrying the design under construction.
class CircuitBuilder {
 public:
  CircuitBuilder(const CircuitSpec& spec)
      : spec_(spec), design_(spec.name), rng_(spec.seed) {}

  Design build() {
    make_macro_defs();
    make_ports();
    make_subsystems();
    make_control();
    add_filler();
    finalize_die_and_ports();
    return std::move(design_);
  }

 private:
  // ------------------------------------------------------------ primitives

  /// Creates `width` flops named base[i] under `hier`; bit i sinks
  /// inputs[i] when provided. Returns the nets driven by the flops.
  std::vector<NetId> reg_array(HierId hier, const std::string& base, int width,
                               const std::vector<NetId>* inputs) {
    std::vector<NetId> out(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const CellId flop = design_.add_cell(
          hier, base + "[" + std::to_string(i) + "]", CellKind::Flop, spec_.avg_cell_area);
      if (inputs && i < static_cast<int>(inputs->size())) {
        design_.add_sink((*inputs)[static_cast<std::size_t>(i)], flop);
      }
      const NetId q = design_.add_net(base + "_q");
      design_.set_driver(q, flop);
      out[static_cast<std::size_t>(i)] = q;
      ++std_cells_;
    }
    return out;
  }

  /// Chain of `depth` comb cells per bit, with light cross-bit mixing.
  std::vector<NetId> comb_cloud(HierId hier, const std::string& base,
                                const std::vector<NetId>& in, int depth) {
    std::vector<NetId> cur = in;
    for (int d = 0; d < depth; ++d) {
      std::vector<NetId> next(cur.size());
      for (std::size_t b = 0; b < cur.size(); ++b) {
        const CellId cell = design_.add_cell(
            hier, base + "_c" + std::to_string(d) + "_" + std::to_string(b),
            CellKind::Comb, spec_.avg_cell_area);
        design_.add_sink(cur[b], cell);
        if (b % 8 == 3 && b + 1 < cur.size()) {
          design_.add_sink(cur[b + 1], cell);  // cross-bit mixing
        }
        const NetId y = design_.add_net(base + "_y");
        design_.set_driver(y, cell);
        next[b] = y;
        ++std_cells_;
      }
      cur = std::move(next);
    }
    return cur;
  }

  // ------------------------------------------------------------ macro defs

  void make_macro_defs() {
    // A few size classes so banks are not uniform.
    const int classes = 3;
    for (int c = 0; c < classes; ++c) {
      const double scale = 0.8 + 0.25 * c;
      MacroDef def = MacroLibrary::make_sram(
          "SRAM_" + std::to_string(c), spec_.macro_w * scale,
          spec_.macro_h * (1.3 - 0.18 * c), spec_.bus_width);
      macro_defs_.push_back(design_.library().add(std::move(def)));
    }
  }

  // ------------------------------------------------------------ ports

  void make_ports() {
    const int w = spec_.bus_width;
    in_nets_.resize(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      const CellId pad = design_.add_cell(
          design_.root(), "in_bus[" + std::to_string(i) + "]", CellKind::PortIn, 0.0);
      const NetId net = design_.add_net("in_bus_n");
      design_.set_driver(net, pad);
      in_nets_[static_cast<std::size_t>(i)] = net;
      in_pads_.push_back(pad);
    }
    for (int i = 0; i < w; ++i) {
      out_pads_.push_back(design_.add_cell(
          design_.root(), "out_bus[" + std::to_string(i) + "]", CellKind::PortOut, 0.0));
    }
    for (int i = 0; i < 8; ++i) {
      const CellId pad = design_.add_cell(
          design_.root(), "cfg_in[" + std::to_string(i) + "]", CellKind::PortIn, 0.0);
      const NetId net = design_.add_net("cfg_in_n");
      design_.set_driver(net, pad);
      cfg_nets_.push_back(net);
      cfg_pads_.push_back(pad);
    }
  }

  // ------------------------------------------------------------ subsystems

  void make_subsystems() {
    // Distribute macros over subsystems (remainder spread from ss0).
    const int s = spec_.subsystems;
    std::vector<int> macros_per_ss(static_cast<std::size_t>(s), spec_.macro_count / s);
    for (int i = 0; i < spec_.macro_count % s; ++i) ++macros_per_ss[static_cast<std::size_t>(i)];

    std::vector<NetId> bus = in_nets_;
    for (int i = 0; i < s; ++i) {
      bus = make_subsystem(i, macros_per_ss[static_cast<std::size_t>(i)], bus);
    }
    // Close the pipeline at the output pads.
    for (std::size_t i = 0; i < out_pads_.size() && i < bus.size(); ++i) {
      design_.add_sink(bus[i], out_pads_[i]);
    }
  }

  std::vector<NetId> make_subsystem(int index, int macro_budget,
                                    const std::vector<NetId>& input_bus) {
    const HierId ss = design_.add_hier(design_.root(), "ss" + std::to_string(index));
    ss_hiers_.push_back(ss);
    const int w = spec_.bus_width;

    // Input stage.
    std::vector<NetId> stage = comb_cloud(ss, "inmux", input_bus, 1);
    stage = reg_array(ss, "inbuf_q", w, &stage);

    // Pipeline stages in their own child modules.
    const int depth = std::max(1, spec_.pipeline_depth + rng_.next_int(-1, 1));
    for (int d = 0; d < depth; ++d) {
      const HierId ps = design_.add_hier(ss, "pipe" + std::to_string(d));
      std::vector<NetId> cloud = comb_cloud(ps, "dp", stage, spec_.comb_depth);
      stage = reg_array(ps, "st" + std::to_string(d) + "_q", w, &cloud);
    }

    // Memory banks: up to 8 macros each.
    std::vector<std::vector<NetId>> read_buses;
    int remaining = macro_budget;
    int bank_idx = 0;
    while (remaining > 0) {
      const int in_bank = std::min(remaining, 4 + rng_.next_int(0, 4));
      read_buses.push_back(make_bank(ss, bank_idx++, in_bank, stage));
      remaining -= in_bank;
    }

    // Merge the read buses into the output stage (bit-interleaved).
    std::vector<NetId> merged(static_cast<std::size_t>(w));
    if (read_buses.empty()) {
      merged = stage;
    } else {
      for (int b = 0; b < w; ++b) {
        const auto& src = read_buses[static_cast<std::size_t>(b) % read_buses.size()];
        merged[static_cast<std::size_t>(b)] = src[static_cast<std::size_t>(b) % src.size()];
      }
    }
    std::vector<NetId> out_cloud = comb_cloud(ss, "outmux", merged, 1);
    return reg_array(ss, "outbuf_q", w, &out_cloud);
  }

  /// A bank: several macros fed from `stage`, each with write logic, an
  /// address register and a read register array. Returns the bank's read
  /// bus (one macro's read registers, representative).
  std::vector<NetId> make_bank(HierId ss, int bank_index, int macro_count,
                               const std::vector<NetId>& stage) {
    const HierId bank = design_.add_hier(ss, "bank" + std::to_string(bank_index));
    std::vector<NetId> read_bus;
    for (int m = 0; m < macro_count; ++m) {
      const MacroDefId def_id =
          macro_defs_[rng_.next_below(macro_defs_.size())];
      const MacroDef& def = design_.library().def(def_id);
      const CellId macro = design_.add_cell(bank, "mem" + std::to_string(m),
                                            CellKind::Macro, 0.0, def_id);

      // Write path: stage -> comb -> D pins (4 pin groups along the left edge).
      std::vector<NetId> wr =
          comb_cloud(bank, "wr" + std::to_string(m), stage, 1);
      for (std::size_t b = 0; b < wr.size(); ++b) {
        const int group = static_cast<int>(b * 4 / wr.size());
        const int pin = def.pin_index("D" + std::to_string(group));
        const MacroPin& mp = def.pins[static_cast<std::size_t>(pin)];
        design_.add_sink(wr[b], macro, static_cast<float>(mp.offset.x),
                         static_cast<float>(mp.offset.y));
      }
      // Address registers (16 bit) from the stage's low bits.
      std::vector<NetId> addr_in(stage.begin(),
                                 stage.begin() + std::min<std::size_t>(16, stage.size()));
      std::vector<NetId> addr =
          reg_array(bank, "addr" + std::to_string(m) + "_q", 16, &addr_in);
      {
        const int pin = def.pin_index("ADDR");
        const MacroPin& mp = def.pins[static_cast<std::size_t>(pin)];
        for (const NetId a : addr) {
          design_.add_sink(a, macro, static_cast<float>(mp.offset.x),
                           static_cast<float>(mp.offset.y));
        }
      }
      // Read path: Q pins -> read registers.
      std::vector<NetId> q_nets(static_cast<std::size_t>(spec_.bus_width));
      for (std::size_t b = 0; b < q_nets.size(); ++b) {
        const int group = static_cast<int>(b * 4 / q_nets.size());
        const int pin = def.pin_index("Q" + std::to_string(group));
        const MacroPin& mp = def.pins[static_cast<std::size_t>(pin)];
        const NetId q = design_.add_net("mem_q");
        design_.set_driver(q, macro, static_cast<float>(mp.offset.x),
                           static_cast<float>(mp.offset.y));
        q_nets[b] = q;
      }
      std::vector<NetId> rd =
          reg_array(bank, "rd" + std::to_string(m) + "_q", spec_.bus_width, &q_nets);
      if (read_bus.empty()) read_bus = rd;
    }
    return read_bus;
  }

  // ------------------------------------------------------------ control

  void make_control() {
    ctrl_hier_ = design_.add_hier(design_.root(), "ctrl");
    std::vector<NetId> cfg = reg_array(ctrl_hier_, "cfg_q", 8, &cfg_nets_);
    // Narrow command links to every subsystem: ctrl cmd regs -> comb ->
    // subsystem control regs. This is the low-bandwidth flow the affinity
    // metric must rank below the wide datapath.
    for (std::size_t i = 0; i < ss_hiers_.size(); ++i) {
      const std::string tag = "ss" + std::to_string(i);
      std::vector<NetId> cmd =
          reg_array(ctrl_hier_, tag + "_cmd_q", 8, &cfg);
      std::vector<NetId> link = comb_cloud(ctrl_hier_, tag + "_lnk", cmd, 2);
      reg_array(ss_hiers_[i], "ctl_q", 8, &link);
    }
  }

  // ------------------------------------------------------------ filler

  void add_filler() {
    const long target = spec_.target_cells;
    long deficit = target - std_cells_;
    if (deficit <= 0) return;
    // 40% of the filler goes under ctrl, the rest is spread over the
    // subsystems, each in a handful of glue modules so declustering sees
    // realistic small HCG nodes.
    struct Zone {
      HierId hier;
      double share;
    };
    std::vector<Zone> zones;
    zones.push_back({ctrl_hier_, 0.4});
    for (const HierId ss : ss_hiers_) {
      zones.push_back({ss, 0.6 / static_cast<double>(ss_hiers_.size())});
    }
    for (const Zone& zone : zones) {
      long budget = static_cast<long>(deficit * zone.share);
      int module_idx = 0;
      while (budget > 0) {
        const long module_cells = std::min<long>(
            budget, 500 + static_cast<long>(rng_.next_below(4000)));
        const HierId glue = design_.add_hier(
            zone.hier, "glue" + std::to_string(module_idx++));
        make_filler_module(glue, module_cells);
        budget -= module_cells;
      }
    }
  }

  /// A filler module: an 8-bit driver register array plus dangling comb
  /// chains hanging off it (kept narrow so it reads as glue, not datapath).
  void make_filler_module(HierId glue, long cells) {
    std::vector<NetId> drv = reg_array(glue, "lcl_q", 8, nullptr);
    cells -= 8;
    const int chain_len = 12;
    int chain_idx = 0;
    while (cells > 0) {
      NetId cur = drv[rng_.next_below(drv.size())];
      const int len = static_cast<int>(std::min<long>(chain_len, cells));
      for (int i = 0; i < len; ++i) {
        const CellId cell = design_.add_cell(
            glue, "f" + std::to_string(chain_idx) + "_" + std::to_string(i),
            CellKind::Comb, spec_.avg_cell_area);
        design_.add_sink(cur, cell);
        const NetId y = design_.add_net("f_y");
        design_.set_driver(y, cell);
        cur = y;
        ++std_cells_;
      }
      cells -= len;
      ++chain_idx;
    }
  }

  // ------------------------------------------------------------ finishing

  void finalize_die_and_ports() {
    const double total = design_.total_cell_area();
    const double die_area = total / spec_.utilization;
    const double side = std::sqrt(die_area);
    design_.set_die(Die{side, side});

    const auto spread = [&](const std::vector<CellId>& pads, double x, bool vertical) {
      for (std::size_t i = 0; i < pads.size(); ++i) {
        const double t = (static_cast<double>(i) + 1.0) / (pads.size() + 1.0);
        const Point pos = vertical ? Point{x, side * (0.1 + 0.8 * t)}
                                   : Point{side * (0.1 + 0.8 * t), x};
        design_.cell_mutable(pads[i]).fixed_pos = pos;
      }
    };
    spread(in_pads_, 0.0, /*vertical=*/true);          // west edge
    spread(out_pads_, side, /*vertical=*/true);        // east edge
    spread(cfg_pads_, side, /*vertical=*/false);       // north edge

    HIDAP_LOG_DEBUG("gen %s: %zu cells (%ld std), %zu macros, die %.0fx%.0f",
                    spec_.name.c_str(), design_.cell_count(), std_cells_,
                    design_.macro_count(), side, side);
  }

  CircuitSpec spec_;
  Design design_;
  Rng rng_;
  std::vector<MacroDefId> macro_defs_;
  std::vector<NetId> in_nets_, cfg_nets_;
  std::vector<CellId> in_pads_, out_pads_, cfg_pads_;
  std::vector<HierId> ss_hiers_;
  HierId ctrl_hier_ = kInvalidId;
  long std_cells_ = 0;
};

}  // namespace

Design generate_circuit(const CircuitSpec& spec) {
  CircuitBuilder builder(spec);
  return builder.build();
}

}  // namespace hidap
