#pragma once
// Synthetic hierarchical SoC generator.
//
// Substitute for the paper's proprietary industrial circuits (see
// DESIGN.md, substitution table). The generator emits exactly the
// structure HiDaP consumes: an RTL-style hierarchy tree, memory-macro
// banks, *named* multi-bit register arrays ("stage_q[17]"), combinational
// clouds between pipeline stages, cross-subsystem buses of configurable
// width and latency, narrow control glue, and boundary ports with die
// locations.
//
// Topology: `subsystems` top-level units arranged in a logical pipeline
// ring (ss0 -> ss1 -> ... -> ss0), each containing memory banks fed and
// drained by register pipelines, plus a shared control/NoC unit with
// narrow links to every subsystem. The dataflow is therefore strongly
// structured -- the property the paper's affinity metric exploits.

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace hidap {

struct CircuitSpec {
  std::string name = "soc";
  int target_cells = 50000;   ///< approximate std-cell count
  int macro_count = 32;
  int subsystems = 4;         ///< top-level pipeline units
  int pipeline_depth = 3;     ///< register stages between memories
  int bus_width = 64;         ///< main datapath width (bits)
  int comb_depth = 3;         ///< comb cells per bit between stages
  double macro_w = 120.0;     ///< base macro footprint (um)
  double macro_h = 90.0;
  double avg_cell_area = 1.2; ///< um^2 per std cell
  double utilization = 0.55;  ///< die sizing: total area / utilization
  std::uint64_t seed = 1;
};

/// Generates the design; die and port locations are set.
Design generate_circuit(const CircuitSpec& spec);

}  // namespace hidap
