#pragma once
// The benchmark suite: eight circuits mirroring the paper's Table III
// instances (exact macro counts, cell counts scaled by `cell_scale`).

#include <string>
#include <vector>

#include "gen/circuit_gen.hpp"

namespace hidap {

struct SuiteEntry {
  CircuitSpec spec;
  long paper_cells = 0;   ///< cell count reported in the paper
  int paper_macros = 0;   ///< macro count reported in the paper
};

/// `cell_scale` = fraction of the paper's cell counts to generate
/// (default 1/10th: the full c4 at 4.81M cells is unnecessary for the
/// relative comparison and slows every bench by ~10x).
std::vector<SuiteEntry> paper_suite(double cell_scale = 0.1);

/// Lookup by name ("c1".."c8"); throws std::out_of_range when unknown.
SuiteEntry suite_circuit(const std::string& name, double cell_scale = 0.1);

/// A small circuit for unit tests and the quickstart example: 16 macros
/// in two mirrored subsystems (the paper's Fig. 1 demonstrator).
CircuitSpec fig1_spec();

}  // namespace hidap
