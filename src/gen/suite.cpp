#include "gen/suite.hpp"

#include <cmath>
#include <stdexcept>

namespace hidap {

std::vector<SuiteEntry> paper_suite(double cell_scale) {
  // name, paper cells, paper macros, subsystems, pipeline, bus width,
  // macro size, seed. Macro counts match Table III exactly; topology
  // parameters vary so the suite is not eight copies of one circuit.
  struct Row {
    const char* name;
    long cells;
    int macros;
    int subsystems;
    int pipeline;
    int bus;
    double mw, mh;
    std::uint64_t seed;
  };
  const Row rows[] = {
      {"c1", 520000, 32, 4, 3, 64, 110, 85, 11},
      {"c2", 3950000, 100, 6, 4, 96, 130, 95, 22},
      {"c3", 3780000, 94, 6, 3, 96, 125, 90, 33},
      {"c4", 4810000, 122, 7, 4, 96, 120, 92, 44},
      {"c5", 1390000, 133, 6, 3, 64, 95, 70, 55},
      {"c6", 2870000, 90, 8, 5, 128, 150, 110, 66},
      {"c7", 1670000, 108, 6, 4, 80, 105, 80, 77},
      {"c8", 2200000, 37, 4, 4, 96, 140, 100, 88},
  };
  std::vector<SuiteEntry> suite;
  for (const Row& r : rows) {
    SuiteEntry e;
    e.paper_cells = r.cells;
    e.paper_macros = r.macros;
    e.spec.name = r.name;
    e.spec.target_cells = static_cast<int>(r.cells * cell_scale);
    // Cell count and area scale together, keeping the suite in the
    // macro-dominated regime the paper targets ("complex designs
    // dominated by macro blocks"). A mild area boost compensates part of
    // the count reduction so glue logic stays visible to declustering.
    e.spec.avg_cell_area = 1.2 * std::min(4.0, std::pow(0.3 / cell_scale, 0.5));
    e.spec.macro_count = r.macros;
    e.spec.subsystems = r.subsystems;
    e.spec.pipeline_depth = r.pipeline;
    e.spec.bus_width = r.bus;
    e.spec.macro_w = r.mw;
    e.spec.macro_h = r.mh;
    e.spec.seed = r.seed;
    suite.push_back(std::move(e));
  }
  return suite;
}

SuiteEntry suite_circuit(const std::string& name, double cell_scale) {
  for (SuiteEntry& e : paper_suite(cell_scale)) {
    if (e.spec.name == name) return std::move(e);
  }
  throw std::out_of_range("unknown suite circuit: " + name);
}

CircuitSpec fig1_spec() {
  CircuitSpec spec;
  spec.name = "fig1";
  spec.target_cells = 6000;
  spec.macro_count = 16;
  spec.subsystems = 2;
  spec.pipeline_depth = 2;
  spec.bus_width = 32;
  spec.macro_w = 80;
  spec.macro_h = 60;
  spec.seed = 7;
  return spec;
}

}  // namespace hidap
