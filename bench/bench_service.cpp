// Warm-vs-cold job latency through one PlacementSession (PR 6) on the
// Table II suite: the cold job pays parsing, sequence-pair extraction,
// recursion planning and shape-curve generation; the warm repeat of the
// identical spec must pull all four artifacts from the content-hash
// cache, skip straight to annealing, and still produce a byte-identical
// DEF. The residual warm time is the irreducible SA cost, so
// cold/warm is the end-to-end precompute share the cache recovers.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "gen/circuit_gen.hpp"
#include "netlist/def_io.hpp"
#include "netlist/verilog_writer.hpp"
#include "service/placement_session.hpp"

using namespace hidap;
using namespace hidap::benchutil;

namespace {

std::string def_bytes(const JobOutcome& outcome) {
  std::ostringstream out;
  write_def(*outcome.design, outcome.placement, out);
  return out.str();
}

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  const double scale = env_scale(0.05);
  const auto suite = selected_suite(scale);

  std::printf("Session cache: cold vs warm job latency (suite scale %.3f, %d threads)\n",
              scale, ThreadPool::default_thread_count());
  print_rule();

  // One session for the whole suite: circuits key separate cache
  // entries, so cross-circuit reuse never happens -- only the exact
  // warm repeat hits.
  PlacementSession session(bench_flow_options().hidap);

  ReportTable table({"Circuit", "Macros", "Cold(s)", "Warm(s)", "Speedup",
                     "WarmHits", "DEF=="});
  std::vector<double> speedups;
  bool all_identical = true;
  bool all_warm_hits = true;

  for (const SuiteEntry& entry : suite) {
    const CircuitSpec& spec = entry.spec;
    log_progress("[service] running %s (%d macros, %d cells)...", spec.name.c_str(),
                 spec.macro_count, spec.target_cells);
    const Design design = generate_circuit(spec);
    std::ostringstream verilog;
    write_verilog(design, verilog);

    PlacementJobSpec job;
    job.id = spec.name;
    job.verilog_text = verilog.str();
    job.seed = 1;

    const JobOutcome cold = session.run(job);
    const JobOutcome warm = session.run(job);
    if (cold.status != JobStatus::Completed || warm.status != JobStatus::Completed) {
      std::printf("FAIL: %s job did not complete (%s / %s)\n", spec.name.c_str(),
                  to_string(cold.status), to_string(warm.status));
      return 1;
    }

    const bool warm_hit = warm.design_cached && warm.context_cached &&
                          warm.curves_cached && warm.plan_cached;
    const bool identical = def_bytes(cold) == def_bytes(warm);
    all_warm_hits = all_warm_hits && warm_hit && !cold.design_cached;
    all_identical = all_identical && identical;
    const double speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0;
    speedups.push_back(speedup);

    table.add_row({spec.name, ReportTable::num(spec.macro_count, 0),
                   ReportTable::num(cold.seconds, 2), ReportTable::num(warm.seconds, 2),
                   ReportTable::num(speedup, 2), warm_hit ? "4/4" : "MISS",
                   identical ? "yes" : "NO"});
  }

  table.print();
  table.write_csv(out_dir() + "/service.csv");
  print_rule();
  std::printf("Geomean cold/warm speedup: %.2fx\n", geomean(speedups));
  std::printf("Warm repeats hit all four artifacts (design/context/curves/plan): %s\n",
              all_warm_hits ? "yes" : "NO");
  std::printf("Warm DEF byte-identical to cold DEF on every circuit: %s\n",
              all_identical ? "yes" : "NO");
  if (!all_identical || !all_warm_hits) {
    std::printf("FAIL: session cache contract violated\n");
    return 1;
  }
  return 0;
}
