// Reproduces paper Fig. 1: the evolution of the multi-level block
// floorplan of a 16-macro design. Emits one SVG per recursion stage
// (out/fig1_stage*.svg) plus the final macro placement (out/fig1_final.svg)
// and prints the recursion trace.

#include <cstdio>

#include "bench_common.hpp"
#include "core/hidap.hpp"
#include "viz/svg.hpp"

using namespace hidap;
using namespace hidap::benchutil;

int main() {
  set_log_level(LogLevel::Warn);
  const CircuitSpec spec = fig1_spec();
  const Design design = generate_circuit(spec);
  std::printf("Reproducing Fig. 1: %zu macros, %zu cells\n", design.macro_count(),
              design.cell_count());

  FlowOptions fo = bench_flow_options();
  const PlacementContext context(design, fo.hidap.seq);
  const PlacementResult result = run_hidap_flow(design, context, fo);

  const std::string dir = out_dir();
  int stage = 0;
  std::printf("%-6s %-24s %8s %8s\n", "stage", "level", "blocks", "macros");
  print_rule(52);
  int max_depth = 0;
  for (const LevelSnapshot& snap : result.snapshots) {
    int macros = 0;
    for (const int c : snap.block_macro_counts) macros += c;
    std::printf("%-6d %-24s %8zu %8d\n", stage, context.ht.path(snap.level).c_str(),
                snap.blocks.size(), macros);
    write_snapshot_svg(design, snap,
                       dir + "/fig1_stage" + std::to_string(stage) + ".svg");
    max_depth = std::max(max_depth, snap.depth);
    ++stage;
  }
  write_placement_svg(design, result, dir + "/fig1_final.svg");
  print_rule(52);
  std::printf("recursion depth: %d levels (paper shows 3 declustering rounds + final)\n",
              max_depth + 1);
  std::printf("wrote %d stage SVGs and %s/fig1_final.svg\n", stage, dir.c_str());

  const PlacementCheck check = check_placement(
      design, result, Rect{0, 0, design.die().w, design.die().h});
  std::printf("all 16 macros placed: %s, inside die: %s, overlap: %.1f um^2\n",
              check.all_macros_placed ? "yes" : "NO",
              check.all_inside_die ? "yes" : "NO", check.overlap_area);
  return 0;
}
