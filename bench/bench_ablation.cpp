// Ablation bench for the design choices DESIGN.md calls out:
//   1. lambda sweep  -- block-flow vs macro-flow balance (paper IV-D)
//   2. k sweep       -- latency decay exponent in score(h, k)
//   3. flow ablation -- HiDaP vs flat SA (no hierarchy/dataflow) vs walls
//   4. flipping      -- macro orientation post-process on/off

#include <cstdio>

#include "baseline/flat_sa.hpp"
#include "baseline/wall_packer.hpp"
#include "bench_common.hpp"
#include "core/hidap.hpp"

using namespace hidap;
using namespace hidap::benchutil;

int main() {
  set_log_level(LogLevel::Warn);
  const double scale = env_scale(0.03);
  const SuiteEntry entry = suite_circuit("c5", scale);
  const Design design = generate_circuit(entry.spec);
  const FlowOptions fo = bench_flow_options();
  const PlacementContext context(design, fo.hidap.seq);
  std::printf("Ablations on c5 (%d macros, %d cells)\n\n", entry.spec.macro_count,
              entry.spec.target_cells);

  const auto eval_wl = [&](const PlacementResult& r) {
    return evaluate_placement(design, context.ht, context.seq, r, fo.eval).wl_m;
  };

  // --- 1. lambda sweep ---------------------------------------------------
  std::printf("lambda sweep (paper flow uses best of {0.2, 0.5, 0.8}):\n");
  std::printf("%8s %10s\n", "lambda", "WL(m)");
  print_rule(22);
  for (const double lambda : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    HiDaPOptions o = fo.hidap;
    o.lambda = lambda;
    o.job.seed = 5;
    std::printf("%8.1f %10.3f\n", lambda, eval_wl(place_macros(design, context, o)));
  }

  // --- 2. latency exponent k ----------------------------------------------
  std::printf("\nlatency decay k in score(h,k) = sum bits/latency^k:\n");
  std::printf("%8s %10s\n", "k", "WL(m)");
  print_rule(22);
  for (const double k : {0.0, 1.0, 2.0, 3.0}) {
    HiDaPOptions o = fo.hidap;
    o.k = k;
    o.job.seed = 5;
    std::printf("%8.1f %10.3f\n", k, eval_wl(place_macros(design, context, o)));
  }

  // --- 3. flow ablation ----------------------------------------------------
  std::printf("\nflow ablation:\n");
  std::printf("%-28s %10s\n", "flow", "WL(m)");
  print_rule(40);
  {
    const PlacementResult hidap = run_hidap_flow(design, context, fo);
    std::printf("%-28s %10.3f\n", "HiDaP (hier + dataflow)", eval_wl(hidap));
  }
  {
    FlatSaOptions o;
    o.anneal = fo.hidap.layout_anneal;
    o.anneal.moves_per_temperature *= 8;  // flat SA needs far more moves
    const PlacementResult flat = place_macros_flat_sa(design, context.seq, o);
    std::printf("%-28s %10.3f\n", "flat SA (no hierarchy)", eval_wl(flat));
  }
  {
    WallPackOptions o;
    o.anneal = fo.hidap.layout_anneal;
    const PlacementResult walls =
        place_macros_walls(design, context.ht, context.seq, o);
    std::printf("%-28s %10.3f\n", "wall packing (IndEDA)", eval_wl(walls));
  }

  // --- 4. macro flipping ----------------------------------------------------
  std::printf("\nmacro flipping post-process:\n");
  {
    HiDaPOptions o = fo.hidap;
    o.job.seed = 5;
    o.flipping_passes = 0;
    const double without = eval_wl(place_macros(design, context, o));
    o.flipping_passes = 4;
    const double with_flip = eval_wl(place_macros(design, context, o));
    std::printf("  WL without flipping: %.3f m\n", without);
    std::printf("  WL with    flipping: %.3f m  (%.2f%% change)\n", with_flip,
                100.0 * (with_flip - without) / without);
  }
  return 0;
}
