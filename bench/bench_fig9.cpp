// Reproduces paper Fig. 9: standard-cell density maps of circuit c3
// placed by the three flows (PPM heatmaps), plus the top-level Gdf block
// floorplan with affinity arrows (Fig. 9d).
//
// Paper observation: IndEDA and handFP put macros on the walls, HiDaP
// finds more distributed locations and shows the smallest peak cell
// density near macros.

#include <cstdio>

#include "bench_common.hpp"
#include "core/dataflow_inference.hpp"
#include "core/hidap.hpp"
#include "viz/heatmap.hpp"
#include "viz/svg.hpp"

using namespace hidap;
using namespace hidap::benchutil;

int main() {
  set_log_level(LogLevel::Warn);
  const double scale = env_scale(0.05);
  const SuiteEntry entry = suite_circuit("c3", scale);
  std::printf("Reproducing Fig. 9 on c3 (%d macros, %d cells)\n",
              entry.spec.macro_count, entry.spec.target_cells);

  const Design design = generate_circuit(entry.spec);
  const FlowOptions fo = bench_flow_options();
  const PlacementContext context(design, fo.hidap.seq);
  const std::string dir = out_dir();

  struct Run {
    const char* tag;
    PlacementResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"indeda", run_indeda_flow(design, context, fo)});
  runs.push_back({"hidap", run_hidap_flow(design, context, fo)});
  runs.push_back({"handfp", run_handfp_flow(design, context, fo)});

  std::printf("%-8s %10s %11s %11s %11s\n", "flow", "WL(m)", "peak dens.",
              "peak@macro", "mean@macro");
  print_rule(58);
  double mean_near[3] = {0, 0, 0};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Metrics m =
        evaluate_placement(design, context.ht, context.seq, runs[i].result, fo.eval);
    const PlacedDesign placed = place_cells(design, context.ht, runs[i].result, fo.eval.place);
    const DensityMap density = compute_density(placed, 64);
    mean_near[i] = density.mean_density_near_macros();
    write_density_ppm(density, dir + "/fig9_" + runs[i].tag + "_density.ppm");
    write_density_csv(density, dir + "/fig9_" + runs[i].tag + "_density.csv");
    write_placement_svg(design, runs[i].result, dir + "/fig9_" + runs[i].tag + ".svg");
    std::printf("%-8s %10.3f %11.3f %11.3f %11.3f\n", runs[i].tag, m.wl_m,
                density.peak_cell_density(), density.peak_density_near_macros(),
                mean_near[i]);
  }
  print_rule(58);
  std::printf("paper shape: HiDaP has the lowest cell pile-up near macros -> %s\n",
              (mean_near[1] <= mean_near[0] + 1e-9 || mean_near[1] <= mean_near[2] + 1e-9)
                  ? "reproduced"
                  : "NOT reproduced on this seed");

  // --- Fig. 9d: top-level Gdf block floorplan from the HiDaP run. ------
  const PlacementResult& hidap_run = runs[1].result;
  if (!hidap_run.snapshots.empty()) {
    const LevelSnapshot& top = hidap_run.snapshots.front();
    HiDaPOptions opts = fo.hidap;
    const LevelDataflow flow = infer_level_dataflow(
        design, context.ht, context.seq, top.level, top.blocks, EstimateSnapshot{}, opts);
    write_gdf_svg(*flow.gdf, flow.affinity, top.block_rects, top.region,
                  dir + "/fig9d_gdf_floorplan.svg");
    std::printf("top-level Gdf: %zu blocks, %zu dataflow edges -> %s/fig9d_gdf_floorplan.svg\n",
                top.blocks.size(), flow.gdf->edges().size(), dir.c_str());
  }
  std::printf("wrote density maps to %s/fig9_*_density.ppm\n", dir.c_str());
  return 0;
}
