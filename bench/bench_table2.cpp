// Reproduces paper Table II: average WL (geomean, normalized to handFP),
// average WNS% and effort for the three flows over the benchmark suite.
//
// Paper reference values:
//   IndEDA  WL 1.143  WNS -39.1%  effort 10-30 min (CPU)
//   HiDaP   WL 1.013  WNS -24.6%  effort 0.5-2 h   (CPU)
//   handFP  WL 1.000  WNS -17.9%  effort 2-4 weeks (engineers)

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace hidap;
using namespace hidap::benchutil;

int main() {
  set_log_level(LogLevel::Warn);
  const double scale = env_scale(0.05);
  const auto suite = selected_suite(scale);

  std::vector<double> wl_ind, wl_hid, wl_hand;
  double wns_ind = 0, wns_hid = 0, wns_hand = 0;
  double t_ind = 0, t_hid = 0, t_hand = 0;

  std::printf("Reproducing Table II (suite scale %.3f of paper cell counts, %d threads)\n",
              scale, ThreadPool::default_thread_count());
  print_rule();
  const std::vector<FlowComparison> results = run_suite_flows(suite, "table2");
  for (const FlowComparison& cmp : results) {
    wl_ind.push_back(cmp.indeda.wl_norm);
    wl_hid.push_back(cmp.hidap.wl_norm);
    wl_hand.push_back(cmp.handfp.wl_norm);
    wns_ind += cmp.indeda.wns_percent;
    wns_hid += cmp.hidap.wns_percent;
    wns_hand += cmp.handfp.wns_percent;
    t_ind += cmp.indeda.runtime_s;
    t_hid += cmp.hidap.runtime_s;
    t_hand += cmp.handfp.runtime_s;
  }
  const double n = static_cast<double>(suite.size());

  ReportTable table({"Flow", "WL(geomean)", "WNS%", "Effort(s, this run)"});
  table.add_row({"IndEDA", ReportTable::num(geomean(wl_ind)),
                 ReportTable::num(wns_ind / n, 1), ReportTable::num(t_ind, 1)});
  table.add_row({"HiDaP", ReportTable::num(geomean(wl_hid)),
                 ReportTable::num(wns_hid / n, 1), ReportTable::num(t_hid, 1)});
  table.add_row({"handFP", ReportTable::num(geomean(wl_hand)),
                 ReportTable::num(wns_hand / n, 1), ReportTable::num(t_hand, 1)});
  table.print();
  table.write_csv(out_dir() + "/table2.csv");
  print_rule();
  std::printf("Paper:   IndEDA 1.143 / -39.1%% / 10-30 min;  HiDaP 1.013 / -24.6%% / "
              "0.5-2 h;  handFP 1.000 / -17.9%% / 2-4 weeks\n");
  std::printf("Expected shape: IndEDA clearly above handFP in WL and WNS; HiDaP within "
              "a few %% of handFP at a fraction of handFP effort.\n");
  return 0;
}
