// Reproduces paper Table III: per-circuit WL (m, normalized), congestion
// GRC% and timing (WNS%, TNS) for IndEDA / HiDaP / handFP on c1..c8.

#include <cstdio>

#include "bench_common.hpp"
#include "eval/report.hpp"

using namespace hidap;
using namespace hidap::benchutil;

namespace {
void print_row(const char* circuit, const Metrics& m, ReportTable& csv) {
  std::printf("%-4s %-7s %8.2f %8.3f %8.2f %8.1f %9.0f\n", circuit, m.flow.c_str(),
              m.wl_m, m.wl_norm, m.grc_percent, m.wns_percent, m.tns_ns);
  csv.add_row({circuit, m.flow, ReportTable::num(m.wl_m, 2),
               ReportTable::num(m.wl_norm), ReportTable::num(m.grc_percent, 2),
               ReportTable::num(m.wns_percent, 1), ReportTable::num(m.tns_ns, 0)});
}
}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  const double scale = env_scale(0.1);
  const auto suite = selected_suite(scale);

  std::printf("Reproducing Table III (suite scale %.3f of paper cell counts, %d threads)\n",
              scale, ThreadPool::default_thread_count());
  std::printf("%-4s %-7s %8s %8s %8s %8s %9s\n", "ckt", "flow", "WL(m)", "norm",
              "GRC%", "WNS%", "TNS(ns)");
  print_rule();
  int hidap_beats_indeda = 0;
  int hidap_beats_handfp = 0;
  ReportTable csv({"circuit", "flow", "wl_m", "wl_norm", "grc_pct", "wns_pct", "tns_ns"});
  const std::vector<FlowComparison> results = run_suite_flows(suite, "table3");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const FlowComparison& cmp = results[i];
    print_row(suite[i].spec.name.c_str(), cmp.indeda, csv);
    print_row(suite[i].spec.name.c_str(), cmp.hidap, csv);
    print_row(suite[i].spec.name.c_str(), cmp.handfp, csv);
    print_rule();
    hidap_beats_indeda += cmp.hidap.wl_m < cmp.indeda.wl_m;
    hidap_beats_handfp += cmp.hidap.wl_m < cmp.handfp.wl_m;
  }
  csv.write_csv(out_dir() + "/table3.csv");
  std::printf("HiDaP beats IndEDA on %d/%zu circuits (paper: 7/8)\n", hidap_beats_indeda,
              suite.size());
  std::printf("HiDaP beats handFP on %d/%zu circuits (paper: 2/8 -- c3, c8)\n",
              hidap_beats_handfp, suite.size());
  std::printf("Paper per-circuit norms: IndEDA 0.99-1.29, HiDaP 0.92-1.06, handFP 1.0\n");
  return 0;
}
