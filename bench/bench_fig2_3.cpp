// Reproduces paper Figs. 2 and 3: a system of four macro blocks (A-D)
// communicating through a standard-cell block X.
//
// Fig. 2a (block flow): every block connects to X -- a star.
// Fig. 2b (macro flow): macros flow A -> B -> C -> D through X's registers.
// Fig. 3: with block flow only (lambda=1) the blocks crowd around X in
// arbitrary relative order; with macro flow only (lambda=0) the chain is
// laid out but X floats; the blend recovers both properties.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/dataflow_inference.hpp"
#include "core/decluster.hpp"
#include "core/hidap.hpp"
#include "viz/svg.hpp"

using namespace hidap;
using namespace hidap::benchutil;

namespace {

// Four single-macro blocks chained through register stages living in X.
Design build_fig2_system() {
  Design d("fig2");
  const MacroDefId mdef = d.library().add(MacroLibrary::make_sram("MEM", 30, 20, 32));
  const HierId hx = d.add_hier(d.root(), "X");
  std::vector<HierId> hblk;
  std::vector<CellId> macros;
  for (const char* name : {"A", "B", "C", "D"}) {
    const HierId h = d.add_hier(d.root(), name);
    hblk.push_back(h);
    macros.push_back(d.add_cell(h, "mem", CellKind::Macro, 0.0, mdef));
  }
  const int w = 32;
  // Chain: macro[i] -> out regs (block i) -> X regs -> in regs (block i+1)
  // -> macro[i+1].
  for (int i = 0; i + 1 < 4; ++i) {
    for (int b = 0; b < w; ++b) {
      const std::string idx = "[" + std::to_string(b) + "]";
      const NetId q = d.add_net("q");
      d.set_driver(q, macros[static_cast<std::size_t>(i)], 30.0f, 10.0f);
      const CellId out_reg = d.add_cell(hblk[static_cast<std::size_t>(i)],
                                        "out" + std::to_string(i) + "_q" + idx,
                                        CellKind::Flop, 1.0);
      d.add_sink(q, out_reg);
      const NetId n0 = d.add_net("n0");
      d.set_driver(n0, out_reg);
      const CellId x_reg = d.add_cell(hx, "x" + std::to_string(i) + "_q" + idx,
                                      CellKind::Flop, 1.0);
      d.add_sink(n0, x_reg);
      const NetId n1 = d.add_net("n1");
      d.set_driver(n1, x_reg);
      const CellId in_reg = d.add_cell(hblk[static_cast<std::size_t>(i) + 1],
                                       "in" + std::to_string(i + 1) + "_q" + idx,
                                       CellKind::Flop, 1.0);
      d.add_sink(n1, in_reg);
      const NetId n2 = d.add_net("n2");
      d.set_driver(n2, in_reg);
      d.add_sink(n2, macros[static_cast<std::size_t>(i) + 1], 0.0f, 10.0f);
    }
  }
  // X carries enough extra logic to qualify as a block (> 40% of area).
  for (int i = 0; i < 2200; ++i) {
    d.add_cell(hx, "fill_c" + std::to_string(i), CellKind::Comb, 1.0);
  }
  const double side = std::sqrt(d.total_cell_area() / 0.5);
  d.set_die(Die{side, side});
  return d;
}

struct LayoutSummary {
  double chain_length = 0.0;  // dist(A,B)+dist(B,C)+dist(C,D)
  double star_length = 0.0;   // sum of dist(block, X)
};

LayoutSummary summarize(const HierTree& ht, const LevelSnapshot& snap) {
  std::map<std::string, Point> centers;
  for (std::size_t b = 0; b < snap.blocks.size(); ++b) {
    centers[ht.path(snap.blocks[b])] = snap.block_rects[b].center();
  }
  LayoutSummary s;
  const char* chain[] = {"fig2/A", "fig2/B", "fig2/C", "fig2/D"};
  for (int i = 0; i + 1 < 4; ++i) {
    s.chain_length += manhattan(centers.at(chain[i]), centers.at(chain[i + 1]));
  }
  for (const char* b : chain) s.star_length += manhattan(centers.at(b), centers.at("fig2/X"));
  return s;
}

}  // namespace

int main() {
  set_log_level(LogLevel::Warn);
  const Design design = build_fig2_system();
  const PlacementContext context(design);
  const std::string dir = out_dir();

  // ---- Fig. 2: dump the two connection graphs at the top level. -------
  const HierTree& ht = context.ht;
  const double area = ht.area(ht.root());
  const Declustering dec = hierarchical_declustering(ht, ht.root(), 0.01 * area,
                                                     0.40 * area);
  HiDaPOptions opts;
  const LevelDataflow flow = infer_level_dataflow(design, ht, context.seq, ht.root(),
                                                  dec.hcb, EstimateSnapshot{}, opts);
  std::printf("Fig. 2 connection graphs (%zu blocks):\n", dec.hcb.size());
  std::printf("%-12s %-12s %12s %12s\n", "from", "to", "block bits", "macro bits");
  print_rule(52);
  for (const DfEdge& e : flow.gdf->edges()) {
    std::printf("%-12s %-12s %12.0f %12.0f\n",
                flow.gdf->node(e.from).name.c_str(), flow.gdf->node(e.to).name.c_str(),
                e.block_flow.total_bits(), e.macro_flow.total_bits());
  }

  // ---- Fig. 3: layouts for the three lambda regimes. -------------------
  std::printf("\nFig. 3 layouts:\n");
  std::printf("%-28s %14s %14s\n", "configuration", "chain length", "star length");
  print_rule(60);
  const struct {
    double lambda;
    const char* name;
    const char* file;
  } regimes[] = {{1.0, "block flow only (3a)", "fig3a_block_only.svg"},
                 {0.0, "macro flow only (3b)", "fig3b_macro_only.svg"},
                 {0.5, "blended (3c)", "fig3c_blended.svg"}};
  double chain[3] = {0, 0, 0};
  int idx = 0;
  for (const auto& regime : regimes) {
    HiDaPOptions o = bench_flow_options().hidap;
    o.lambda = regime.lambda;
    o.job.seed = 11;
    const PlacementResult result = place_macros(design, context, o);
    const LayoutSummary s = summarize(ht, result.snapshots.front());
    chain[idx++] = s.chain_length;
    std::printf("%-28s %14.0f %14.0f\n", regime.name, s.chain_length, s.star_length);
    write_snapshot_svg(design, result.snapshots.front(), dir + "/" + regime.file);
  }
  print_rule(60);
  std::printf("expected shape: macro-flow-aware runs (3b, 3c) give a shorter A-B-C-D\n"
              "chain than block-flow-only (3a); the blend also keeps X central.\n");
  std::printf("chain(3a)=%.0f vs chain(3c)=%.0f -> %s\n", chain[0], chain[2],
              chain[2] <= chain[0] ? "reproduced" : "NOT reproduced (SA noise; rerun)");
  std::printf("wrote out/fig3*.svg\n");
  return 0;
}
