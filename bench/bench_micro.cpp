// Google-benchmark kernel timings for the library's hot paths: shape
// curve composition, budget layout, Polish-expression moves, Gseq
// extraction, multi-source BFS (target-area assignment), affinity
// inference, full per-level layout annealing, and the parallel runtime
// (task dispatch overhead, parallel_for scaling).

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/dataflow_inference.hpp"
#include "core/decluster.hpp"
#include "core/layout_optimizer.hpp"
#include "core/target_area.hpp"
#include "dataflow/seq_extract.hpp"
#include "floorplan/area_floorplanner.hpp"
#include "floorplan/budget_layout.hpp"
#include "gen/suite.hpp"
#include "runtime/thread_pool.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace hidap;

const Design& medium_design() {
  static Design* d = [] {
    set_log_level(LogLevel::Warn);
    CircuitSpec spec = fig1_spec();
    spec.target_cells = 20000;
    spec.macro_count = 24;
    spec.subsystems = 3;
    return new Design(generate_circuit(spec));
  }();
  return *d;
}

void BM_ShapeCurveCompose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<ShapeCurve> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(ShapeCurve::for_rect(rng.next_double(5, 50), rng.next_double(5, 50)));
  }
  const PolishExpression expr = PolishExpression::initial(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_curve(leaves, expr, 24));
  }
}
BENCHMARK(BM_ShapeCurveCompose)->Arg(8)->Arg(32)->Arg(128);

void BM_BudgetLayout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<BudgetBlock> blocks;
  for (int i = 0; i < n; ++i) {
    BudgetBlock b;
    b.at = rng.next_double(50, 200);
    b.am = b.at * 0.8;
    if (i % 2 == 0) b.gamma = ShapeCurve::for_rect(rng.next_double(3, 10), rng.next_double(3, 10));
    blocks.push_back(b);
  }
  PolishExpression expr = PolishExpression::initial(n);
  for (int i = 0; i < 50; ++i) expr.perturb(rng);
  const Rect budget{0, 0, 100, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget_layout(expr, blocks, budget));
  }
}
BENCHMARK(BM_BudgetLayout)->Arg(8)->Arg(16)->Arg(32);

void BM_PolishPerturb(benchmark::State& state) {
  Rng rng(3);
  PolishExpression expr = PolishExpression::initial(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    expr.perturb(rng);
    benchmark::DoNotOptimize(expr);
  }
}
BENCHMARK(BM_PolishPerturb)->Arg(16)->Arg(64);

void BM_CellAdjacencyBuild(benchmark::State& state) {
  const Design& d = medium_design();
  for (auto _ : state) {
    CellAdjacency adj(d);
    benchmark::DoNotOptimize(adj);
  }
}
BENCHMARK(BM_CellAdjacencyBuild);

void BM_SeqExtraction(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_seq_graph(d, adj));
  }
}
BENCHMARK(BM_SeqExtraction);

void BM_TargetAreaBfs(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  const HierTree ht(d);
  const double area = ht.area(ht.root());
  const Declustering dec =
      hierarchical_declustering(ht, ht.root(), 0.01 * area, 0.4 * area);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_target_areas(d, adj, ht, ht.root(), dec.hcb));
  }
}
BENCHMARK(BM_TargetAreaBfs);

void BM_DataflowInference(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  const HierTree ht(d);
  const SeqGraph seq = extract_seq_graph(d, adj);
  const double area = ht.area(ht.root());
  const Declustering dec =
      hierarchical_declustering(ht, ht.root(), 0.01 * area, 0.4 * area);
  const HiDaPOptions opts;
  const std::vector<Point> est(d.cell_count());
  const std::vector<bool> has(d.cell_count(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infer_level_dataflow(d, ht, seq, ht.root(), dec.hcb, est, has, opts));
  }
}
BENCHMARK(BM_DataflowInference);

void BM_LayoutAnneal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  LayoutProblem p;
  p.region = {0, 0, 400, 400};
  AffinityMatrix aff(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    BudgetBlock b;
    b.at = rng.next_double(2000, 12000);
    b.am = b.at * 0.7;
    b.gamma = ShapeCurve::for_rect(rng.next_double(20, 60), rng.next_double(20, 60));
    p.blocks.push_back(b);
    if (i > 0) aff.set(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i), 1.0);
  }
  p.affinity = &aff;
  AnnealOptions a;
  a.moves_per_temperature = 50;
  a.cooling = 0.8;
  a.max_stagnant_temperatures = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_layout(p, a));
  }
}
BENCHMARK(BM_LayoutAnneal)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

// --- parallel runtime ------------------------------------------------

// Round-trip cost of one futures-based dispatch (submit + get).
void BM_PoolSubmit(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
}
BENCHMARK(BM_PoolSubmit)->Arg(1)->Arg(2)->Arg(4);

// Fork-join cost of an empty parallel_for (pure runtime overhead).
void BM_ParallelForDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(64, [](std::size_t i) { benchmark::DoNotOptimize(i); });
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

// parallel_for scaling on a synthetic HPWL-like kernel: per-net
// bounding-box perimeter over random pin clouds, one shard per lane
// writing its own partial sum (the runtime's determinism contract).
void BM_ParallelForHpwlKernel(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  constexpr std::size_t kNets = 20000;
  constexpr int kPins = 8;
  static const std::vector<Point>* pins = [] {
    Rng rng(13);
    auto* p = new std::vector<Point>(kNets * kPins);
    for (Point& pt : *p) pt = {rng.next_double(0, 1000), rng.next_double(0, 1000)};
    return p;
  }();
  ThreadPool pool(lanes);
  const std::size_t shards = static_cast<std::size_t>(lanes) * 4;
  const std::size_t per_shard = (kNets + shards - 1) / shards;
  std::vector<double> partial(shards);
  for (auto _ : state) {
    pool.parallel_for(shards, [&](std::size_t s) {
      double sum = 0.0;
      const std::size_t end = std::min(kNets, (s + 1) * per_shard);
      for (std::size_t net = s * per_shard; net < end; ++net) {
        double xmin = 1e30, xmax = -1e30, ymin = 1e30, ymax = -1e30;
        for (int p = 0; p < kPins; ++p) {
          const Point& pt = (*pins)[net * kPins + static_cast<std::size_t>(p)];
          xmin = std::min(xmin, pt.x);
          xmax = std::max(xmax, pt.x);
          ymin = std::min(ymin, pt.y);
          ymax = std::max(ymax, pt.y);
        }
        sum += (xmax - xmin) + (ymax - ymin);
      }
      partial[s] = sum;
    });
    benchmark::DoNotOptimize(
        std::accumulate(partial.begin(), partial.end(), 0.0));
  }
}
BENCHMARK(BM_ParallelForHpwlKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
