// Google-benchmark kernel timings for the library's hot paths: shape
// curve composition, budget layout, Polish-expression moves, Gseq
// extraction, multi-source BFS (target-area assignment), affinity
// inference, full per-level layout annealing, and the parallel runtime
// (task dispatch overhead, parallel_for scaling).

#include <benchmark/benchmark.h>

#include <array>
#include <numeric>
#include <span>
#include <utility>

#include "baseline/flat_cost.hpp"
#include "core/dataflow_inference.hpp"
#include "core/decluster.hpp"
#include "core/layout_optimizer.hpp"
#include "core/target_area.hpp"
#include "dataflow/seq_extract.hpp"
#include "floorplan/area_floorplanner.hpp"
#include "floorplan/budget_layout.hpp"
#include "floorplan/incremental_eval.hpp"
#include "gen/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace hidap;

const Design& medium_design() {
  static Design* d = [] {
    set_log_level(LogLevel::Warn);
    CircuitSpec spec = fig1_spec();
    spec.target_cells = 20000;
    spec.macro_count = 24;
    spec.subsystems = 3;
    return new Design(generate_circuit(spec));
  }();
  return *d;
}

void BM_ShapeCurveCompose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<ShapeCurve> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(ShapeCurve::for_rect(rng.next_double(5, 50), rng.next_double(5, 50)));
  }
  const PolishExpression expr = PolishExpression::initial(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_curve(leaves, expr, 24));
  }
}
BENCHMARK(BM_ShapeCurveCompose)->Arg(8)->Arg(32)->Arg(128);

// Sweep vs pairwise shape-curve composition at realistic frontier sizes
// (aspect-swept staircases like the ones pack_shape_curve and
// budget_compose_info shuttle around; exactly p points each). The sweep
// must produce bit-identical point lists; only the time may differ
// (acceptance gate: >= 5x at p = 16..64).
ShapeCurve compose_bench_curve(int p, std::uint64_t seed) {
  Rng rng(seed);
  return ShapeCurve::soft_area(rng.next_double(800, 3000), 0.25, 4.0, p);
}

void BM_ComposePairwise(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const ShapeCurve a = compose_bench_curve(p, 21);
  const ShapeCurve b = compose_bench_curve(p, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapeCurve::compose_horizontal_pairwise(a, b));
    benchmark::DoNotOptimize(ShapeCurve::compose_vertical_pairwise(a, b));
  }
}
BENCHMARK(BM_ComposePairwise)->Arg(16)->Arg(32)->Arg(64);

void BM_ComposeSweep(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const ShapeCurve a = compose_bench_curve(p, 21);
  const ShapeCurve b = compose_bench_curve(p, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapeCurve::compose_horizontal(a, b));
    benchmark::DoNotOptimize(ShapeCurve::compose_vertical(a, b));
  }
}
BENCHMARK(BM_ComposeSweep)->Arg(16)->Arg(32)->Arg(64);

void BM_BudgetLayout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<BudgetBlock> blocks;
  for (int i = 0; i < n; ++i) {
    BudgetBlock b;
    b.at = rng.next_double(50, 200);
    b.am = b.at * 0.8;
    if (i % 2 == 0) b.gamma = ShapeCurve::for_rect(rng.next_double(3, 10), rng.next_double(3, 10));
    blocks.push_back(b);
  }
  PolishExpression expr = PolishExpression::initial(n);
  for (int i = 0; i < 50; ++i) expr.perturb(rng);
  const Rect budget{0, 0, 100, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget_layout(expr, blocks, budget));
  }
}
BENCHMARK(BM_BudgetLayout)->Arg(8)->Arg(16)->Arg(32);

void BM_PolishPerturb(benchmark::State& state) {
  Rng rng(3);
  PolishExpression expr = PolishExpression::initial(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    expr.perturb(rng);
    benchmark::DoNotOptimize(expr);
  }
}
BENCHMARK(BM_PolishPerturb)->Arg(16)->Arg(64);

void BM_CellAdjacencyBuild(benchmark::State& state) {
  const Design& d = medium_design();
  for (auto _ : state) {
    CellAdjacency adj(d);
    benchmark::DoNotOptimize(adj);
  }
}
BENCHMARK(BM_CellAdjacencyBuild);

void BM_SeqExtraction(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_seq_graph(d, adj));
  }
}
BENCHMARK(BM_SeqExtraction);

void BM_TargetAreaBfs(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  const HierTree ht(d);
  const double area = ht.area(ht.root());
  const Declustering dec =
      hierarchical_declustering(ht, ht.root(), 0.01 * area, 0.4 * area);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_target_areas(d, adj, ht, ht.root(), dec.hcb));
  }
}
BENCHMARK(BM_TargetAreaBfs);

void BM_DataflowInference(benchmark::State& state) {
  const Design& d = medium_design();
  const CellAdjacency adj(d);
  const HierTree ht(d);
  const SeqGraph seq = extract_seq_graph(d, adj);
  const double area = ht.area(ht.root());
  const Declustering dec =
      hierarchical_declustering(ht, ht.root(), 0.01 * area, 0.4 * area);
  const HiDaPOptions opts;
  const EstimateSnapshot est(d.cell_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infer_level_dataflow(d, ht, seq, ht.root(), dec.hcb, est, opts));
  }
}
BENCHMARK(BM_DataflowInference);

// Shared setup for the layout SA kernels: n blocks shaped like the ones
// recursive_floorplan hands to optimize_layout at the default bench
// scale -- multi-point Pareto shape curves from the bottom-up area
// floorplanner (not bare rectangles) and a moderately dense inferred
// affinity. The caller owns the returned matrix.
struct LayoutBenchProblem {
  LayoutProblem problem;
  AffinityMatrix affinity{0};
};

LayoutBenchProblem make_layout_problem(int n) {
  Rng rng(5);
  LayoutBenchProblem lp;
  lp.problem.region = {0, 0, 400, 400};
  lp.affinity = AffinityMatrix(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    BudgetBlock b;
    b.at = rng.next_double(2000, 12000);
    b.am = b.at * 0.7;
    // A composed macro curve: the rect orientations plus the soft-area
    // sweep, like pack_shape_curve produces for a cluster.
    b.gamma = ShapeCurve::for_rect(rng.next_double(20, 60), rng.next_double(20, 60));
    b.gamma.merge(ShapeCurve::soft_area(b.am, 0.4, 2.5, 16));
    lp.problem.blocks.push_back(b);
    for (int j = 0; j < i; ++j) {
      if (j == i - 1 || rng.next_bool(0.25)) {
        lp.affinity.set(static_cast<std::size_t>(j), static_cast<std::size_t>(i),
                        rng.next_double(0.05, 1.0));
      }
    }
  }
  return lp;
}

void BM_LayoutAnneal(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  AnnealOptions a;
  a.moves_per_temperature = 50;
  a.cooling = 0.8;
  a.max_stagnant_temperatures = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_layout(lp.problem, a));
  }
}
BENCHMARK(BM_LayoutAnneal)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

// --- incremental move evaluation -------------------------------------

// The evaluation kernels cost the same stream of proposals: a ring of
// single-move perturbations around one base expression -- the
// neighborhood an annealer's cooled phase grinds through while nearly
// every proposal is rejected (that phase is where the bulk of the
// schedule's moves go once the walk stops drifting). Move generation is
// outside both timed regions, so the numbers compare pure move
// evaluation: full recompute vs the warm incremental engine.
std::vector<PolishExpression> make_move_ring(int n, Rng& rng, PolishExpression& base) {
  base = PolishExpression::initial(n);
  for (int k = 0; k < 50; ++k) base.perturb(rng);  // settle into a random base
  std::vector<PolishExpression> ring;
  for (int k = 0; k < 64; ++k) {
    PolishExpression e = base;
    for (int tries = 0; tries < 8; ++tries) {
      if (e.perturb(rng)) break;
    }
    ring.push_back(std::move(e));
  }
  return ring;
}

// One SA move costed by full recompute: budget_layout from scratch plus
// the O(n^2) affinity scan. The reference the incremental engine must
// beat (and match bit for bit).
void BM_FullEvaluate(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  Rng rng(17);
  PolishExpression base;
  const std::vector<PolishExpression> ring =
      make_move_ring(static_cast<int>(lp.problem.blocks.size()), rng, base);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_layout_full(lp.problem, ring[k]));
    k = (k + 1) % ring.size();
  }
}
BENCHMARK(BM_FullEvaluate)->Arg(8)->Arg(16)->Arg(32);

// The same proposal stream through IncrementalLayoutEval: only the
// mutated slicing-tree path recomposes its shape curves (straight out of
// the compose memo once the neighborhood is warm) and only relocated
// blocks refresh their connectivity terms.
void BM_IncrementalEvaluate(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  Rng rng(17);
  PolishExpression base;
  const std::vector<PolishExpression> ring =
      make_move_ring(static_cast<int>(lp.problem.blocks.size()), rng, base);
  IncrementalLayoutEval eval(lp.problem.blocks, lp.problem.region, lp.problem.terminals,
                             lp.affinity, base);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.propose([&](PolishExpression& expr) { expr = ring[k]; }));
    eval.rollback();
    k = (k + 1) % ring.size();
  }
}
BENCHMARK(BM_IncrementalEvaluate)->Arg(8)->Arg(16)->Arg(32);

// Split-skipping ablation: the same rejected-move ring with the top-down
// budget splits always rerun in full (BudgetOptions::skip_splits off).
// The delta against BM_IncrementalEvaluate is what the skippable-splits
// scheme saves per move.
void BM_IncrementalEvaluateNoSplitSkip(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  Rng rng(17);
  PolishExpression base;
  const std::vector<PolishExpression> ring =
      make_move_ring(static_cast<int>(lp.problem.blocks.size()), rng, base);
  BudgetOptions no_skip;
  no_skip.skip_splits = false;
  IncrementalLayoutEval eval(lp.problem.blocks, lp.problem.region, lp.problem.terminals,
                             lp.affinity, base, no_skip);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.propose([&](PolishExpression& expr) { expr = ring[k]; }));
    eval.rollback();
    k = (k + 1) % ring.size();
  }
}
BENCHMARK(BM_IncrementalEvaluateNoSplitSkip)->Arg(8)->Arg(16)->Arg(32);

// Batched speculation: the same rejected-move ring consumed 8 candidates
// at a time through propose_batch + discard_batch -- the all-rejected
// case that dominates a cooled schedule, where batching amortizes the
// shape-curve walk and scores every lane in one SoA reduction. Reported
// per candidate, so the number is directly comparable against
// BM_IncrementalEvaluate.
void BM_BatchedEvaluate(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  Rng rng(17);
  PolishExpression base;
  const std::vector<PolishExpression> ring =
      make_move_ring(static_cast<int>(lp.problem.blocks.size()), rng, base);
  IncrementalLayoutEval eval(lp.problem.blocks, lp.problem.region, lp.problem.terminals,
                             lp.affinity, base);
  constexpr std::size_t kBatch = 8;
  std::array<double, kBatch> costs{};
  std::size_t k = 0;
  for (auto _ : state) {
    eval.propose_batch(
        kBatch,
        [&](std::size_t, PolishExpression& expr) {
          expr = ring[k];
          k = (k + 1) % ring.size();
        },
        costs.data());
    benchmark::DoNotOptimize(costs);
    eval.discard_batch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  // Shared-prefix occupancy (the sa.lane_nodes* counters' source):
  // walked/lane_nodes is the fraction of per-lane tree nodes that were
  // actually dirty and re-parsed; the rest rode the committed caches.
  const auto& walk = eval.lane_walk_stats();
  state.counters["lane_nodes"] = static_cast<double>(walk.lane_nodes);
  state.counters["nodes_walked"] = static_cast<double>(walk.nodes_walked);
}
BENCHMARK(BM_BatchedEvaluate)->Arg(8)->Arg(16)->Arg(32);

// Lane-walk ablation pair: the identical 16-wide all-rejected batch
// stream evaluated by the shared changed-prefix walk (propose_batch:
// one classification pass, clean subtrees served from the committed
// caches, lane-divergent suffixes composed vertically in SoA form) vs
// the pre-lane-walk path (propose_batch_serial: one full scalar tree
// evaluation per lane). Bit-identical outputs by contract -- the delta
// is pure walk-sharing, reported per candidate.
template <bool kShared>
void lane_walk_bench(benchmark::State& state) {
  LayoutBenchProblem lp = make_layout_problem(static_cast<int>(state.range(0)));
  lp.problem.affinity = &lp.affinity;
  Rng rng(17);
  PolishExpression base;
  const std::vector<PolishExpression> ring =
      make_move_ring(static_cast<int>(lp.problem.blocks.size()), rng, base);
  IncrementalLayoutEval eval(lp.problem.blocks, lp.problem.region, lp.problem.terminals,
                             lp.affinity, base);
  constexpr std::size_t kBatch = IncrementalLayoutEval::kMaxBatch;
  std::array<double, kBatch> costs{};
  std::size_t k = 0;
  const auto generate = [&](std::size_t, PolishExpression& expr) {
    expr = ring[k];
    k = (k + 1) % ring.size();
  };
  for (auto _ : state) {
    if constexpr (kShared) {
      eval.propose_batch(kBatch, generate, costs.data());
    } else {
      eval.propose_batch_serial(kBatch, generate, costs.data());
    }
    benchmark::DoNotOptimize(costs);
    eval.discard_batch();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}

void BM_LaneTreeWalk(benchmark::State& state) { lane_walk_bench<true>(state); }
BENCHMARK(BM_LaneTreeWalk)->Arg(8)->Arg(16)->Arg(32);

void BM_SerialLaneWalk(benchmark::State& state) { lane_walk_bench<false>(state); }
BENCHMARK(BM_SerialLaneWalk)->Arg(8)->Arg(16)->Arg(32);

// The SoA reduction in isolation: K lanes of sparse per-term overrides
// summed against a committed term vector (LaneTermBatch::reduce) vs the
// scalar baseline of K copy-and-resum passes over the same terms. Both
// walk the identical left-to-right add order per lane, so this ablation
// prices the vertical vectorization alone. Arg is the term count; 5% of
// terms are overridden per lane, the density a couple of relocated
// blocks produce.
void BM_SoAAffinityKernel(benchmark::State& state) {
  const std::size_t terms = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLanes = 8;
  Rng rng(23);
  std::vector<double> committed(terms);
  for (double& t : committed) t = rng.next_double(0.0, 10.0);
  LaneTermBatch batch;
  batch.begin(kLanes, terms);
  const std::size_t touched = std::max<std::size_t>(1, terms / 20);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t i = 0; i < touched; ++i) {
      batch.set(lane, static_cast<std::uint32_t>(rng.next_below(terms)),
                rng.next_double(0.0, 10.0));
    }
  }
  std::array<double, kLanes> sums{};
  for (auto _ : state) {
    batch.reduce(committed.data(), sums.data());
    benchmark::DoNotOptimize(sums);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * terms));
}
BENCHMARK(BM_SoAAffinityKernel)->Arg(64)->Arg(512)->Arg(4096);

// The scalar reference for BM_SoAAffinityKernel: K independent
// copy-then-override-then-resum passes, which is exactly what K scalar
// propose() calls pay for their term reduction.
void BM_ScalarAffinityKernel(benchmark::State& state) {
  const std::size_t terms = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLanes = 8;
  Rng rng(23);
  std::vector<double> committed(terms);
  for (double& t : committed) t = rng.next_double(0.0, 10.0);
  const std::size_t touched = std::max<std::size_t>(1, terms / 20);
  std::vector<std::pair<std::uint32_t, double>> overrides;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    for (std::size_t i = 0; i < touched; ++i) {
      overrides.emplace_back(static_cast<std::uint32_t>(rng.next_below(terms)),
                             rng.next_double(0.0, 10.0));
    }
  }
  std::vector<double> scratch(terms);
  std::array<double, kLanes> sums{};
  for (auto _ : state) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      scratch = committed;
      for (std::size_t i = 0; i < touched; ++i) {
        const auto& [idx, v] = overrides[lane * touched + i];
        scratch[idx] = v;
      }
      double sum = 0.0;
      for (const double t : scratch) sum += t;
      sums[lane] = sum;
    }
    benchmark::DoNotOptimize(sums);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * terms));
}
BENCHMARK(BM_ScalarAffinityKernel)->Arg(64)->Arg(512)->Arg(4096);

// Flat-SA objective, full recompute per move (position map + all-pairs
// overlap) vs the per-net / per-pair delta cache.
const SeqGraph& flat_seq() {
  static SeqGraph* seq = [] {
    const CellAdjacency adj(medium_design());
    return new SeqGraph(extract_seq_graph(medium_design(), adj));
  }();
  return *seq;
}

std::vector<MacroPlacement> flat_initial_state(Rng& rng) {
  const Design& d = medium_design();
  const Rect die{0, 0, d.die().w, d.die().h};
  std::vector<MacroPlacement> macros;
  for (const CellId cell : d.macros()) {
    const MacroDef& def = d.macro_def_of(cell);
    macros.push_back({cell,
                      Rect{rng.next_double(die.x, die.xmax() * 0.7),
                           rng.next_double(die.y, die.ymax() * 0.7), def.w, def.h},
                      Orientation::R0});
  }
  return macros;
}

void BM_FlatFullCost(benchmark::State& state) {
  const Design& d = medium_design();
  const Rect die{0, 0, d.die().w, d.die().h};
  const FlatCostModel model(d, flat_seq(), die, 4.0);
  Rng rng(29);
  std::vector<MacroPlacement> macros = flat_initial_state(rng);
  for (auto _ : state) {
    const std::size_t i = rng.next_below(macros.size());
    macros[i].rect.x += rng.next_double(-0.05, 0.05) * die.w;
    benchmark::DoNotOptimize(model(macros));
  }
}
BENCHMARK(BM_FlatFullCost);

void BM_FlatDeltaCost(benchmark::State& state) {
  const Design& d = medium_design();
  const Rect die{0, 0, d.die().w, d.die().h};
  const FlatCostModel model(d, flat_seq(), die, 4.0);
  Rng rng(29);
  std::vector<MacroPlacement> macros = flat_initial_state(rng);
  IncrementalFlatCost inc(model, macros);
  for (auto _ : state) {
    const std::size_t i = rng.next_below(macros.size());
    macros[i].rect.x += rng.next_double(-0.05, 0.05) * die.w;
    const std::array<std::size_t, 1> moved{i};
    benchmark::DoNotOptimize(
        inc.propose(macros, std::span<const std::size_t>(moved.data(), 1)));
    inc.commit();
  }
}
BENCHMARK(BM_FlatDeltaCost);

// --- parallel runtime ------------------------------------------------

// Round-trip cost of one futures-based dispatch (submit + get).
void BM_PoolSubmit(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
}
BENCHMARK(BM_PoolSubmit)->Arg(1)->Arg(2)->Arg(4);

// Fork-join cost of an empty parallel_for (pure runtime overhead).
void BM_ParallelForDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(64, [](std::size_t i) { benchmark::DoNotOptimize(i); });
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

// parallel_for scaling on a synthetic HPWL-like kernel: per-net
// bounding-box perimeter over random pin clouds, one shard per lane
// writing its own partial sum (the runtime's determinism contract).
void BM_ParallelForHpwlKernel(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  constexpr std::size_t kNets = 20000;
  constexpr int kPins = 8;
  static const std::vector<Point>* pins = [] {
    Rng rng(13);
    auto* p = new std::vector<Point>(kNets * kPins);
    for (Point& pt : *p) pt = {rng.next_double(0, 1000), rng.next_double(0, 1000)};
    return p;
  }();
  ThreadPool pool(lanes);
  const std::size_t shards = static_cast<std::size_t>(lanes) * 4;
  const std::size_t per_shard = (kNets + shards - 1) / shards;
  std::vector<double> partial(shards);
  for (auto _ : state) {
    pool.parallel_for(shards, [&](std::size_t s) {
      double sum = 0.0;
      const std::size_t end = std::min(kNets, (s + 1) * per_shard);
      for (std::size_t net = s * per_shard; net < end; ++net) {
        double xmin = 1e30, xmax = -1e30, ymin = 1e30, ymax = -1e30;
        for (int p = 0; p < kPins; ++p) {
          const Point& pt = (*pins)[net * kPins + static_cast<std::size_t>(p)];
          xmin = std::min(xmin, pt.x);
          xmax = std::max(xmax, pt.x);
          ymin = std::min(ymin, pt.y);
          ymax = std::max(ymax, pt.y);
        }
        sum += (xmax - xmin) + (ymax - ymin);
      }
      partial[s] = sum;
    });
    benchmark::DoNotOptimize(
        std::accumulate(partial.begin(), partial.end(), 0.0));
  }
}
BENCHMARK(BM_ParallelForHpwlKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- observability overhead kernels (ISSUE 7 gate: a span site with
// tracing disabled must cost one relaxed load + branch -- i.e. within
// noise of the PR 6 baseline for any instrumented loop).

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  for (auto _ : state) {
    obs::Span span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_tracing_enabled(false);
  obs::Tracer::instance().clear();
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::default_registry().counter("bench.obs_counter");
  for (auto _ : state) {
    counter.add(1);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& hist = obs::default_registry().histogram(
      "bench.obs_hist", {1, 10, 100, 1000, 10000});
  double v = 0.5;
  for (auto _ : state) {
    hist.record(v);
    v = v < 20000 ? v * 3 : 0.5;
  }
}
BENCHMARK(BM_ObsHistogramRecord);

// --- fail-point overhead kernel (ISSUE 9 gate: a disarmed site must
// cost one relaxed load + branch, same bar as BM_ObsSpanDisabled --
// production code paths carry the sites for free).

void BM_FailpointDisarmed(benchmark::State& state) {
  failpoints::disarm_all();
  for (auto _ : state) {
    HIDAP_FAILPOINT("bench.failpoint");
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_FailpointDisarmed);

}  // namespace

BENCHMARK_MAIN();
