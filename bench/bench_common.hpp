#pragma once
// Shared helpers for the table/figure benches: effort presets, scaling
// via environment variables, table formatting, output directory.
//
// Environment knobs:
//   HIDAP_SCALE  -- fraction of the paper's cell counts to generate
//                   (default varies per bench; e.g. 0.03 for Table II)
//   HIDAP_FAST=1 -- slash SA effort for smoke runs
//   HIDAP_CIRCUITS=c1,c3 -- restrict the suite
//   HIDAP_THREADS=n -- lanes for the parallel suite driver (default:
//                   hardware concurrency; results are identical at any n)
//   HIDAP_LEGACY_ESTIMATES=1 -- pre-scheduler estimate semantics (each
//                   level's inference sees earlier siblings' refinements;
//                   sequential recursion). Default: snapshot semantics
//                   with the task-graph scheduler on.
//   HIDAP_ANNEAL_AUTOSCALE=1 -- per-level SA effort auto-scaling
//                   (HiDaPOptions::anneal_autoscale; moves-per-step
//                   scaled by subtree block count). Default off, like
//                   the CLI's --anneal-autoscale.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/flows.hpp"
#include "gen/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace hidap::benchutil {

inline double env_scale(double fallback) {
  return env_double("HIDAP_SCALE", fallback, 1e-4, 100.0);
}

inline bool env_fast() {
  const char* s = std::getenv("HIDAP_FAST");
  return s && std::string(s) != "0";
}

inline bool env_legacy_estimates() {
  const char* s = std::getenv("HIDAP_LEGACY_ESTIMATES");
  return s && std::string(s) != "0";
}

inline bool env_anneal_autoscale() {
  const char* s = std::getenv("HIDAP_ANNEAL_AUTOSCALE");
  return s && std::string(s) != "0";
}

inline std::vector<SuiteEntry> selected_suite(double scale) {
  std::vector<SuiteEntry> all = paper_suite(scale);
  const char* filter = std::getenv("HIDAP_CIRCUITS");
  if (!filter) return all;
  std::vector<SuiteEntry> out;
  const std::string list = filter;
  for (SuiteEntry& e : all) {
    if (list.find(e.spec.name) != std::string::npos) out.push_back(std::move(e));
  }
  return out.empty() ? all : out;
}

/// Bench-calibrated flow options: fast enough for the full suite while
/// preserving the relative comparison.
inline FlowOptions bench_flow_options(std::uint64_t seed = 1) {
  FlowOptions o;
  o.seed = seed;
  o.hidap.layout_anneal.moves_per_temperature = 160;
  o.hidap.layout_anneal.cooling = 0.85;
  o.hidap.layout_anneal.max_stagnant_temperatures = 5;
  o.hidap.shape_fp.anneal.moves_per_temperature = 80;
  o.hidap.shape_fp.anneal.cooling = 0.85;
  o.hidap.shape_fp.anneal.max_stagnant_temperatures = 4;
  // The commercial tool the paper compares against is wall-constrained
  // and not dataflow-aware; a low ring-order budget keeps the proxy
  // competent but blind, as described (DESIGN.md substitution table).
  o.indeda_effort = 0.3;
  o.handfp_effort = 2.0;
  o.handfp_seeds = 2;
  o.eval.place.target_clusters = 0;  // auto: sized to the spreading grid
  o.eval.place.solver_iterations = 50;
  o.hidap.legacy_estimate_order = env_legacy_estimates();
  o.hidap.anneal_autoscale = env_anneal_autoscale();
  if (env_fast()) {
    o.hidap.layout_anneal.moves_per_temperature = 40;
    o.hidap.shape_fp.anneal.moves_per_temperature = 30;
    o.handfp_effort = 1.0;
    o.handfp_seeds = 1;
    o.eval.place.solver_iterations = 20;
  }
  return o;
}

/// Tracing knobs for suite benches: HIDAP_TRACE_JSON=path enables the
/// phase tracer for the whole run and exports a Chrome trace when
/// finish_suite_observability() runs; HIDAP_PHASE_SUMMARY=1 prints the
/// per-phase self-time table. Purely observability: suite results are
/// byte-identical either way.
inline void init_suite_observability() {
  if (std::getenv("HIDAP_TRACE_JSON") != nullptr ||
      (std::getenv("HIDAP_PHASE_SUMMARY") != nullptr &&
       std::string(std::getenv("HIDAP_PHASE_SUMMARY")) != "0")) {
    obs::set_tracing_enabled(true);
  }
}

inline void finish_suite_observability() {
  if (const char* path = std::getenv("HIDAP_TRACE_JSON")) {
    std::string error;
    if (obs::Tracer::instance().export_chrome_trace(path, &error)) {
      std::printf("wrote %s\n", path);
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
    }
  }
  const char* summary = std::getenv("HIDAP_PHASE_SUMMARY");
  if (summary != nullptr && std::string(summary) != "0") {
    std::fputs(obs::phase_summary().c_str(), stdout);
  }
}

/// Parallel suite driver: generates every circuit and runs the 3-flow
/// comparison, sharded across the global thread pool (circuits and the
/// sweeps inside each flow nest on the same pool). Results come back in
/// suite order and are bit-identical at any HIDAP_THREADS setting; only
/// the wall clock changes. Per-circuit progress goes through the
/// mutex-serialized util/log progress channel AND the process metric
/// registry (bench.circuits / bench.circuit_s), so suite walls are
/// machine-readable next to the human progress lines.
inline std::vector<FlowComparison> run_suite_flows(const std::vector<SuiteEntry>& suite,
                                                   const char* tag) {
  init_suite_observability();
  std::vector<FlowComparison> results(suite.size());
  obs::Histogram& circuit_wall = obs::default_registry().histogram(
      "bench.circuit_s", {1, 5, 15, 60, 300, 1800});
  obs::Counter& circuits_done = obs::default_registry().counter("bench.circuits");
  parallel_for(suite.size(), [&](std::size_t i) {
    const CircuitSpec& spec = suite[i].spec;
    log_progress("[%s] running %s (%d macros, %d cells)...", tag, spec.name.c_str(),
                 spec.macro_count, spec.target_cells);
    const Timer circuit_timer;
    const Design design = generate_circuit(spec);
    results[i] = compare_flows(design, bench_flow_options());
    const double seconds = circuit_timer.seconds();
    circuit_wall.record(seconds);
    circuits_done.add(1);
    log_progress("[%s] %s done in %.1fs", tag, spec.name.c_str(), seconds);
  });
  finish_suite_observability();
  return results;
}

inline std::string out_dir() {
  std::filesystem::create_directories("out");
  return "out";
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(std::max(x, 1e-12));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace hidap::benchutil
